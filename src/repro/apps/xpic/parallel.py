"""Slab-decomposed xPic: the real numerics, distributed over ranks.

Row-slab domain decomposition of the 2D grid (contiguous memory per
slab).  Field arrays carry one ghost row on each side::

    slot 0        = bottom ghost (neighbour's last owned row)
    slots 1..R    = owned rows
    slot R+1      = top ghost (neighbour's first owned row)

All communication (ghost exchange, moment halo-add, particle
migration, CG dot products) goes through the simulated MPI, so the
numeric runs exercise exactly the communication pattern the
performance model charges for — and their physics must match the
single-process reference (:class:`~repro.apps.xpic.simulation.XpicSimulation`).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

import numpy as np

from ...mpi import Comm
from .config import XpicConfig
from .fields import conjugate_gradient  # noqa: F401 (reference impl)
from .grid import Grid2D
from .particles import Species, maxwellian_species

__all__ = ["Slab", "DistributedFields", "DistributedParticles", "load_slab_species"]

TAG_HALO_UP = 71
TAG_HALO_DOWN = 72
TAG_MOMENT_FOLD = 73
TAG_MIGRATE_UP = 74
TAG_MIGRATE_DOWN = 75


class Slab:
    """One rank's share of the global grid (rows in y)."""

    def __init__(self, config: XpicConfig, n_ranks: int, rank: int):
        if config.ny % n_ranks != 0:
            raise ValueError(f"ny={config.ny} not divisible into {n_ranks} slabs")
        if not 0 <= rank < n_ranks:
            raise ValueError("rank out of range")
        self.config = config
        self.n_ranks = n_ranks
        self.rank = rank
        self.global_grid = Grid2D(config.nx, config.ny, config.lx, config.ly)
        self.rows = config.ny // n_ranks
        self.row0 = rank * self.rows
        self.nx = config.nx
        self.dx = self.global_grid.dx
        self.dy = self.global_grid.dy
        self.y0 = self.row0 * self.dy
        self.y1 = (self.row0 + self.rows) * self.dy

    @property
    def up(self) -> int:
        """Rank owning the rows above (periodic)."""
        return (self.rank + 1) % self.n_ranks

    @property
    def down(self) -> int:
        """Rank owning the rows below (periodic)."""
        return (self.rank - 1) % self.n_ranks

    def zeros_ext(self, components: int = 3) -> np.ndarray:
        """Extended array with ghost rows: (components, rows+2, nx)."""
        if components == 1:
            return np.zeros((self.rows + 2, self.nx))
        return np.zeros((components, self.rows + 2, self.nx))

    def owned(self, ext: np.ndarray) -> np.ndarray:
        """View of the owned rows of an extended array."""
        return ext[..., 1:-1, :]

    # -- local differential operators (x periodic, y via ghosts) -----------
    def ddx(self, ext: np.ndarray) -> np.ndarray:
        """d/dx on owned rows; input extended, output owned-shaped."""
        f = ext[..., 1:-1, :]
        return (np.roll(f, -1, axis=-1) - np.roll(f, 1, axis=-1)) / (2 * self.dx)

    def ddy(self, ext: np.ndarray) -> np.ndarray:
        """d/dy on owned rows using the ghost rows."""
        return (ext[..., 2:, :] - ext[..., :-2, :]) / (2 * self.dy)

    def laplacian(self, ext: np.ndarray) -> np.ndarray:
        """Compact Laplacian on owned rows, using the ghost rows in y."""
        f = ext[..., 1:-1, :]
        ddxx = (
            np.roll(f, -1, axis=-1) - 2 * f + np.roll(f, 1, axis=-1)
        ) / self.dx**2
        ddyy = (ext[..., 2:, :] - 2 * f + ext[..., :-2, :]) / self.dy**2
        return ddxx + ddyy

    def curl(self, ext: np.ndarray) -> np.ndarray:
        """Curl of an extended 3-component field, on owned rows."""
        out = np.empty((3, self.rows, self.nx))
        out[0] = self.ddy(ext[2])
        out[1] = -self.ddx(ext[2])
        out[2] = self.ddx(ext[1]) - self.ddy(ext[0])
        return out

    # -- particle indexing --------------------------------------------------
    def local_indices(self, x: np.ndarray, y: np.ndarray):
        """CIC corner indices into the *extended* arrays for particles
        inside this slab, plus the bilinear weights."""
        fx = x / self.dx
        fy = y / self.dy
        ix = np.floor(fx).astype(np.int64) % self.nx
        iy_global = np.floor(fy).astype(np.int64)
        slot = iy_global - self.row0 + 1  # owned rows map to 1..rows
        tx = fx - np.floor(fx)
        ty = fy - np.floor(fy)
        w00 = (1 - ty) * (1 - tx)
        w01 = (1 - ty) * tx
        w10 = ty * (1 - tx)
        w11 = ty * tx
        return ix, slot, w00, w01, w10, w11

    def interpolate(self, ext: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Gather an extended (3, rows+2, nx) field at particle positions."""
        ix, slot, w00, w01, w10, w11 = self.local_indices(x, y)
        ix1 = (ix + 1) % self.nx
        out = np.empty((ext.shape[0], x.shape[0]))
        for c in range(ext.shape[0]):
            f = ext[c]
            out[c] = (
                f[slot, ix] * w00
                + f[slot, ix1] * w01
                + f[slot + 1, ix] * w10
                + f[slot + 1, ix1] * w11
            )
        return out

    def deposit(self, x: np.ndarray, y: np.ndarray, values: np.ndarray) -> np.ndarray:
        """CIC-deposit per-particle values into an extended scalar array."""
        ext_flat = np.zeros((self.rows + 2) * self.nx)
        if x.shape[0]:
            ix, slot, w00, w01, w10, w11 = self.local_indices(x, y)
            ix1 = (ix + 1) % self.nx
            n = ext_flat.shape[0]
            ext_flat += np.bincount(slot * self.nx + ix, weights=values * w00, minlength=n)
            ext_flat += np.bincount(slot * self.nx + ix1, weights=values * w01, minlength=n)
            ext_flat += np.bincount((slot + 1) * self.nx + ix, weights=values * w10, minlength=n)
            ext_flat += np.bincount((slot + 1) * self.nx + ix1, weights=values * w11, minlength=n)
        return ext_flat.reshape(self.rows + 2, self.nx) / (self.dx * self.dy)


class DistributedFields:
    """The field solver's state on one slab, with MPI generators."""

    def __init__(self, slab: Slab, config: XpicConfig):
        self.slab = slab
        self.config = config
        self.E = slab.zeros_ext()
        self.B = slab.zeros_ext()
        self.E_theta = slab.zeros_ext()
        self.last_cg_iters = 0

    # -- halo exchange ----------------------------------------------------
    def halo_exchange(self, comm: Comm, ext: np.ndarray) -> Generator:
        """Fill the ghost rows of an extended array from the neighbours.

        Single rank: periodic wrap is local.
        """
        slab = self.slab
        if slab.n_ranks == 1:
            ext[..., 0, :] = ext[..., -2, :]
            ext[..., -1, :] = ext[..., 1, :]
            return
        top_owned = np.ascontiguousarray(ext[..., -2, :])
        bottom_owned = np.ascontiguousarray(ext[..., 1, :])
        # send my top row up / receive my bottom ghost from below
        got_bottom = yield from comm.sendrecv(
            top_owned, dest=slab.up, source=slab.down,
            sendtag=TAG_HALO_UP, recvtag=TAG_HALO_UP,
        )
        # send my bottom row down / receive my top ghost from above
        got_top = yield from comm.sendrecv(
            bottom_owned, dest=slab.down, source=slab.up,
            sendtag=TAG_HALO_DOWN, recvtag=TAG_HALO_DOWN,
        )
        ext[..., 0, :] = got_bottom
        ext[..., -1, :] = got_top

    # -- distributed CG -----------------------------------------------------
    def _apply_helmholtz(self, comm: Comm, dt: float, ext: np.ndarray) -> Generator:
        yield from self.halo_exchange(comm, ext)
        k = (self.config.c * self.config.theta * dt) ** 2
        return self.slab.owned(ext) - k * self.slab.laplacian(ext)

    def _dot(self, comm: Comm, a: np.ndarray, b: np.ndarray) -> Generator:
        local = float(np.sum(a * b))
        total = yield from comm.allreduce(local)
        return total

    def _cg(
        self, comm: Comm, dt: float, b_owned: np.ndarray, x0_ext: np.ndarray
    ) -> Generator:
        """Distributed conjugate gradients on one field component."""
        slab = self.slab
        x = x0_ext.copy()
        Ax = yield from self._apply_helmholtz(comm, dt, x)
        r = b_owned - Ax
        p_ext = slab.zeros_ext(1)
        p_ext[1:-1, :] = r
        rs = yield from self._dot(comm, r, r)
        b_norm2 = yield from self._dot(comm, b_owned, b_owned)
        if b_norm2 == 0.0:
            return slab.zeros_ext(1), 0
        tol2 = (self.config.cg_tol**2) * b_norm2
        it = 0
        while rs > tol2 and it < self.config.cg_max_iters:
            Ap = yield from self._apply_helmholtz(comm, dt, p_ext)
            pAp = yield from self._dot(comm, slab.owned(p_ext), Ap)
            alpha = rs / pAp
            x[1:-1, :] += alpha * slab.owned(p_ext)
            r -= alpha * Ap
            rs_new = yield from self._dot(comm, r, r)
            p_ext[1:-1, :] = r + (rs_new / rs) * slab.owned(p_ext)
            rs = rs_new
            it += 1
        yield from self.halo_exchange(comm, x)
        return x, it

    # -- solver steps -----------------------------------------------------
    def calculate_E(
        self, comm: Comm, dt: float, rho_owned: np.ndarray, J_owned: np.ndarray
    ) -> Generator:
        """Distributed implicit field solve (cf. FieldSolver.calculate_E)."""
        cfg, slab = self.config, self.slab
        ctdt = cfg.c * cfg.theta * dt
        yield from self.halo_exchange(comm, self.B)
        curlB = slab.curl(self.B)
        rhs = slab.owned(self.E) + ctdt * (curlB - 4.0 * np.pi * J_owned / cfg.c)
        total_iters = 0
        for c in range(3):
            x0 = np.zeros((slab.rows + 2, slab.nx))
            x0[:, :] = self.E_theta[c]
            sol, iters = yield from self._cg(comm, dt, rhs[c], x0)
            self.E_theta[c] = sol
            total_iters += iters
        if cfg.theta > 0:
            self.E[:, 1:-1, :] = (
                self.E_theta[:, 1:-1, :] - (1.0 - cfg.theta) * self.E[:, 1:-1, :]
            ) / cfg.theta
        else:
            self.E = self.E_theta.copy()
        yield from self.halo_exchange(comm, self.E)
        self.last_cg_iters = total_iters
        return total_iters

    def calculate_B(self, comm: Comm, dt: float) -> Generator:
        """Distributed Faraday update of B from the decentred E field."""
        yield from self.halo_exchange(comm, self.E_theta)
        curlE = self.slab.curl(self.E_theta)
        self.B[:, 1:-1, :] -= self.config.c * dt * curlE
        yield from self.halo_exchange(comm, self.B)

    def field_energy_local(self) -> float:
        """This slab's contribution to the total field energy."""
        cell = self.slab.dx * self.slab.dy
        return 0.5 * cell * float(
            np.sum(self.slab.owned(self.E) ** 2)
            + np.sum(self.slab.owned(self.B) ** 2)
        )


class DistributedParticles:
    """The particle solver's state on one slab, with MPI generators."""

    def __init__(self, slab: Slab, species: List[Species]):
        self.slab = slab
        self.species = species

    def move(self, E_ext: np.ndarray, B_ext: np.ndarray, dt: float) -> None:
        """Boris push against the slab-extended field arrays (local)."""
        slab = self.slab
        for sp in self.species:
            if sp.n == 0:
                continue
            qmdt2 = 0.5 * dt * sp.config.charge / sp.config.mass
            Ep = slab.interpolate(E_ext, sp.x, sp.y)
            Bp = slab.interpolate(B_ext, sp.x, sp.y)
            vminus = sp.v + qmdt2 * Ep
            t = qmdt2 * Bp
            t2 = np.sum(t * t, axis=0)
            s = 2.0 * t / (1.0 + t2)
            vprime = vminus + np.cross(vminus.T, t.T).T
            vplus = vminus + np.cross(vprime.T, s.T).T
            sp.v = vplus + qmdt2 * Ep
            sp.x += dt * sp.v[0]
            sp.y += dt * sp.v[1]
            np.mod(sp.x, slab.global_grid.lx, out=sp.x)
            np.mod(sp.y, slab.global_grid.ly, out=sp.y)

    def migrate(self, comm: Comm) -> Generator:
        """Ship particles that left the slab to the neighbour ranks.

        One step's travel is assumed under one slab height (checked),
        so only nearest-neighbour exchange is needed.
        """
        slab = self.slab
        if slab.n_ranks == 1:
            return 0
        moved = 0
        for si, sp in enumerate(self.species):
            in_slab = (sp.y >= slab.y0) & (sp.y < slab.y1)
            # periodic distance decides direction for wrapped leavers
            dy_up = (sp.y - slab.y1) % slab.global_grid.ly
            dy_down = (slab.y0 - sp.y) % slab.global_grid.ly
            goes_up = ~in_slab & (dy_up <= dy_down)
            goes_down = ~in_slab & ~goes_up
            up_pack = sp.extract(goes_up)
            # extract() compacts arrays; recompute the down mask
            in_slab2 = (sp.y >= slab.y0) & (sp.y < slab.y1)
            down_pack = sp.extract(~in_slab2)
            got_down = yield from comm.sendrecv(
                up_pack, dest=slab.up, source=slab.down,
                sendtag=TAG_MIGRATE_UP + 10 * si,
                recvtag=TAG_MIGRATE_UP + 10 * si,
            )
            got_up = yield from comm.sendrecv(
                down_pack, dest=slab.down, source=slab.up,
                sendtag=TAG_MIGRATE_DOWN + 10 * si,
                recvtag=TAG_MIGRATE_DOWN + 10 * si,
            )
            sp.inject(got_down)
            sp.inject(got_up)
            moved += len(up_pack["x"]) + len(down_pack["x"])
        return moved

    def gather_moments(self, comm: Comm) -> Generator:
        """Deposit rho and J on the slab and fold the top halo row into
        the upper neighbour's first owned row."""
        slab = self.slab
        rho_ext = np.zeros((slab.rows + 2, slab.nx))
        J_ext = np.zeros((3, slab.rows + 2, slab.nx))
        for sp in self.species:
            q = np.full(sp.x.shape, sp.charge)
            rho_ext += slab.deposit(sp.x, sp.y, q)
            for c in range(3):
                J_ext[c] += slab.deposit(sp.x, sp.y, q * sp.v[c])
        # fold: my slot rows+1 belongs to the neighbour above
        if slab.n_ranks == 1:
            rho_ext[1, :] += rho_ext[-1, :]
            J_ext[:, 1, :] += J_ext[:, -1, :]
        else:
            send_up = np.concatenate(
                [rho_ext[-1, :][None, :], J_ext[:, -1, :]], axis=0
            )
            got = yield from comm.sendrecv(
                np.ascontiguousarray(send_up),
                dest=slab.up, source=slab.down,
                sendtag=TAG_MOMENT_FOLD, recvtag=TAG_MOMENT_FOLD,
            )
            rho_ext[1, :] += got[0]
            J_ext[:, 1, :] += got[1:]
        return slab.owned(rho_ext[None, ...])[0], slab.owned(J_ext)

    def kinetic_energy_local(self) -> float:
        """This slab's contribution to the total kinetic energy."""
        return sum(sp.kinetic_energy() for sp in self.species)

    @property
    def n_particles(self) -> int:
        """Macro-particles currently on this slab."""
        return sum(sp.n for sp in self.species)


def load_slab_species(config: XpicConfig, slab: Slab) -> List[Species]:
    """Load the *same global particle population* as the reference run
    and keep only this slab's share.

    Every rank draws the identical global sample (same seed, same
    order) and filters by slab ownership — guaranteeing the distributed
    run starts from exactly the reference initial condition.
    """
    rng = np.random.default_rng(config.seed)
    out = []
    for sc in config.species:
        sp_global = maxwellian_species(sc, slab.global_grid, rng)
        mask = (sp_global.y >= slab.y0) & (sp_global.y < slab.y1)
        out.append(
            Species(
                sc,
                sp_global.x[mask],
                sp_global.y[mask],
                sp_global.v[:, mask],
                weight=sp_global.weight,
            )
        )
    return out
