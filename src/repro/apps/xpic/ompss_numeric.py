"""Numeric xPic through OmpSs tasks: real physics, dataflow-scheduled.

Where :mod:`repro.apps.xpic.ompss_port` runs the *cost model* through
the OmpSs runtime, this module runs the *actual NumPy solvers* as
annotated tasks: ``calculateE`` (Cluster target) consumes the moment
arrays and produces the field arrays; ``particles`` (Booster target)
consumes the fields and produces the next moments.  The dependency
clauses alone serialize the pipeline; the runtime moves the real
arrays across the fabric when tasks change modules.

The equivalence test against the reference main loop is the
portability statement of section III: the same physics regardless of
programming model.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ...hardware.machine import Machine
from ...ompss import OmpSsRuntime
from ...perfmodel import field_kernel, particle_kernel
from .config import XpicConfig
from .simulation import XpicSimulation

__all__ = ["run_xpic_ompss_numeric"]


def run_xpic_ompss_numeric(
    machine: Machine,
    config: XpicConfig,
) -> Dict[str, float]:
    """Run the full simulation as an OmpSs task graph; returns the
    state fingerprint (identical to the reference loop's)."""
    sim_app = XpicSimulation(config)
    rt = OmpSsRuntime(
        machine, home="cluster", cluster_workers=1, booster_workers=1
    )
    rt.set_data("moments", (sim_app.rho.copy(), sim_app.J.copy()))

    fk = field_kernel(config.cells)
    pk = particle_kernel(config.total_particles)

    def calculate_E(moments):
        """Field-solver task body (Listing 1's fld part)."""
        rho, J = moments
        sim_app.fields.calculate_E(config.dt, rho, J)
        return (sim_app.fields.E_theta.copy(), sim_app.fields.B.copy())

    def particles(fields):
        """Particle-solver task body (Listing 1's pcl part)."""
        E_p, B_p = fields
        for sp in sim_app.species:
            sp.move(sim_app.grid, E_p, B_p, config.dt)
        rho, J = sim_app.gather_moments()
        sim_app.rho, sim_app.J = rho, J
        # calculateB belongs to the field side; keeping Listing 1's
        # order it runs right after the moments exist
        sim_app.fields.calculate_B(config.dt)
        return (rho.copy(), J.copy())

    for step in range(config.steps):
        rt.submit(
            calculate_E,
            name=f"calculateE_{step}",
            ins=["moments"],
            outs=["fields"],
            target="cluster",
            kernel=fk,
        )
        rt.submit(
            particles,
            name=f"particles_{step}",
            ins=["fields"],
            outs=["moments"],
            target="booster",
            kernel=pk,
        )
    rt.run()
    return sim_app.state_fingerprint()
