"""Single-process xPic simulation (the original main loop, Listing 1).

This is the reference numerical implementation: both solvers execute in
one process, coupled through the interface buffers.  The partitioned
drivers (:mod:`repro.apps.xpic.driver`) must produce the same physics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .config import XpicConfig
from .fields import FieldSolver
from .grid import Grid2D
from .interface import pack_fields, pack_moments, unpack_fields, unpack_moments
from .particles import Species, maxwellian_species

__all__ = ["XpicSimulation", "StepDiagnostics"]


@dataclass
class StepDiagnostics:
    """Per-step observables (the code's "auxiliary computations")."""

    step: int
    field_energy: float
    kinetic_energy: float
    total_charge: float
    cg_iterations: int

    @property
    def total_energy(self) -> float:
        """Field plus kinetic energy at this step."""
        return self.field_energy + self.kinetic_energy


class XpicSimulation:
    """The original (non-partitioned) xPic main loop."""

    def __init__(self, config: XpicConfig):
        self.config = config
        self.grid = Grid2D(config.nx, config.ny, config.lx, config.ly)
        self.fields = FieldSolver(
            self.grid,
            c=config.c,
            theta=config.theta,
            cg_tol=config.cg_tol,
            cg_max_iters=config.cg_max_iters,
        )
        rng = np.random.default_rng(config.seed)
        self.species: List[Species] = [
            maxwellian_species(sc, self.grid, rng) for sc in config.species
        ]
        self.step_count = 0
        self.history: List[StepDiagnostics] = []
        # Initial moment gathering so the first field solve has sources.
        self.rho, self.J = self.gather_moments()

    # -- moment helper -----------------------------------------------------
    def gather_moments(self):
        """Accumulate charge and current density over all species."""
        rho = self.grid.zeros()
        J = self.grid.vector_zeros()
        for sp in self.species:
            r, j = sp.moments(self.grid)
            rho += r
            J += j
        return rho, J

    # -- main loop (Listing 1) ---------------------------------------------
    def step(self) -> StepDiagnostics:
        """Advance one time step of the original main loop (Listing 1)."""
        cfg, fld = self.config, self.fields
        # fld.solver->calculateE()
        cg_iters = fld.calculate_E(cfg.dt, self.rho, self.J)
        # fld.cpyToArr_F(); pcl.cpyFromArr_F()
        fbuf = pack_fields(fld.E_theta, fld.B)
        E_p, B_p = unpack_fields(fbuf, self.grid)
        # ParticlesMove(); ParticleMoments() per species
        for sp in self.species:
            sp.move(self.grid, E_p, B_p, cfg.dt)
        rho, J = self.gather_moments()
        # pcl.cpyToArr_M(); fld.cpyFromArr_M()
        mbuf = pack_moments(rho, J)
        self.rho, self.J = unpack_moments(mbuf, self.grid)
        # fld.solver->calculateB()
        fld.calculate_B(cfg.dt)

        self.step_count += 1
        diag = StepDiagnostics(
            step=self.step_count,
            field_energy=fld.field_energy(),
            kinetic_energy=sum(sp.kinetic_energy() for sp in self.species),
            total_charge=float(np.sum(self.rho)) * self.grid.dx * self.grid.dy,
            cg_iterations=cg_iters,
        )
        self.history.append(diag)
        return diag

    def run(self, steps: int = None) -> List[StepDiagnostics]:
        """Run ``steps`` time steps (config default) and return the history."""
        steps = self.config.steps if steps is None else steps
        for _ in range(steps):
            self.step()
        return self.history

    # -- diagnostics ------------------------------------------------------
    def state_fingerprint(self) -> Dict[str, float]:
        """Compact summary for comparing runs (driver equivalence tests)."""
        return {
            "field_energy": self.fields.field_energy(),
            "kinetic_energy": sum(sp.kinetic_energy() for sp in self.species),
            "rho_sum": float(np.sum(self.rho)),
            "E_norm": float(np.linalg.norm(self.fields.E)),
            "B_norm": float(np.linalg.norm(self.fields.B)),
        }
