"""xPic: the Space Weather particle-in-cell co-design application.

A real 2D implicit-moment PIC implementation (field solver + particle
solver coupled through interface buffers, Fig 5 of the paper) plus the
partitioned drivers that run it across the simulated Cluster-Booster
machine in the paper's three evaluation modes.
"""

from .config import SpeciesConfig, XpicConfig, table2_setup
from .driver import Mode, RunResult, normalize_mode, run_experiment
from .fields import FieldSolver, conjugate_gradient
from .grid import Grid2D
from .interface import (
    fields_nbytes,
    moments_nbytes,
    pack_fields,
    pack_moments,
    unpack_fields,
    unpack_moments,
)
from .moments import deposit_moments, deposit_scalar, interpolate
from .particles import Species, maxwellian_species
from .simulation import StepDiagnostics, XpicSimulation
from .workload import StepWorkload, build_workload

__all__ = [
    "XpicConfig",
    "SpeciesConfig",
    "table2_setup",
    "Mode",
    "RunResult",
    "normalize_mode",
    "run_experiment",
    "FieldSolver",
    "conjugate_gradient",
    "Grid2D",
    "Species",
    "maxwellian_species",
    "XpicSimulation",
    "StepDiagnostics",
    "StepWorkload",
    "build_workload",
    "deposit_moments",
    "deposit_scalar",
    "interpolate",
    "pack_fields",
    "unpack_fields",
    "pack_moments",
    "unpack_moments",
    "fields_nbytes",
    "moments_nbytes",
]
