"""2D (block) domain decomposition for the numeric xPic.

Generalizes :mod:`repro.apps.xpic.parallel` from row slabs to a
``px x py`` process grid — the decomposition real PIC production runs
use.  Local arrays carry one ghost cell on *all four* sides::

    (components, rows+2, cols+2)        interior = [1:-1, 1:-1]

Corner ghosts (needed by CIC interpolation/deposition) are obtained by
the standard two-phase trick: exchange in x first, then exchange in y
*including the x-ghost columns*, which propagates corners without
diagonal messages.  Particle migration uses the same two-phase pattern.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

import numpy as np

from ...mpi import Comm
from .config import XpicConfig
from .grid import Grid2D
from .particles import Species, maxwellian_species

__all__ = ["Block2D", "DistributedFields2D", "DistributedParticles2D",
           "load_block_species"]

TAG_X = 81
TAG_Y = 82
TAG_FOLD_X = 83
TAG_FOLD_Y = 84
TAG_MIG_X = 85
TAG_MIG_Y = 86


class Block2D:
    """One rank's block of the global grid in a px x py layout."""

    def __init__(self, config: XpicConfig, layout: Tuple[int, int], rank: int):
        px, py = layout
        if px < 1 or py < 1:
            raise ValueError("layout must be positive")
        if config.nx % px or config.ny % py:
            raise ValueError(
                f"grid {config.nx}x{config.ny} not divisible by layout {layout}"
            )
        if not 0 <= rank < px * py:
            raise ValueError("rank outside the process grid")
        self.config = config
        self.px, self.py = px, py
        self.rank = rank
        self.rx = rank % px
        self.ry = rank // px
        self.global_grid = Grid2D(config.nx, config.ny, config.lx, config.ly)
        self.cols = config.nx // px
        self.rows = config.ny // py
        self.col0 = self.rx * self.cols
        self.row0 = self.ry * self.rows
        self.dx = self.global_grid.dx
        self.dy = self.global_grid.dy
        self.x0 = self.col0 * self.dx
        self.x1 = (self.col0 + self.cols) * self.dx
        self.y0 = self.row0 * self.dy
        self.y1 = (self.row0 + self.rows) * self.dy

    # -- neighbours (periodic process grid) ---------------------------------
    def neighbour(self, dx_r: int, dy_r: int) -> int:
        """Rank offset by (dx, dy) on the periodic process grid."""
        nx_r = (self.rx + dx_r) % self.px
        ny_r = (self.ry + dy_r) % self.py
        return ny_r * self.px + nx_r

    @property
    def left(self) -> int:
        """Rank of the -x neighbour block."""
        return self.neighbour(-1, 0)

    @property
    def right(self) -> int:
        """Rank of the +x neighbour block."""
        return self.neighbour(+1, 0)

    @property
    def down(self) -> int:
        """Rank of the -y neighbour block."""
        return self.neighbour(0, -1)

    @property
    def up(self) -> int:
        """Rank of the +y neighbour block."""
        return self.neighbour(0, +1)

    def zeros_ext(self, components: int = 3) -> np.ndarray:
        """Zeroed extended array with one ghost cell on every side."""
        shape = (self.rows + 2, self.cols + 2)
        if components == 1:
            return np.zeros(shape)
        return np.zeros((components,) + shape)

    def owned(self, ext: np.ndarray) -> np.ndarray:
        """View of the owned interior of an extended array."""
        return ext[..., 1:-1, 1:-1]

    # -- operators (all ghosts assumed filled) ------------------------------
    def ddx(self, ext: np.ndarray) -> np.ndarray:
        """Central d/dx on owned cells using the x ghosts."""
        return (ext[..., 1:-1, 2:] - ext[..., 1:-1, :-2]) / (2 * self.dx)

    def ddy(self, ext: np.ndarray) -> np.ndarray:
        """Central d/dy on owned cells using the y ghosts."""
        return (ext[..., 2:, 1:-1] - ext[..., :-2, 1:-1]) / (2 * self.dy)

    def laplacian(self, ext: np.ndarray) -> np.ndarray:
        """Compact Laplacian on owned cells using all face ghosts."""
        f = ext[..., 1:-1, 1:-1]
        return (
            (ext[..., 1:-1, 2:] - 2 * f + ext[..., 1:-1, :-2]) / self.dx**2
            + (ext[..., 2:, 1:-1] - 2 * f + ext[..., :-2, 1:-1]) / self.dy**2
        )

    def curl(self, ext: np.ndarray) -> np.ndarray:
        """Curl of an extended 3-component field, on owned cells."""
        out = np.empty((3, self.rows, self.cols))
        out[0] = self.ddy(ext[2])
        out[1] = -self.ddx(ext[2])
        out[2] = self.ddx(ext[1]) - self.ddy(ext[0])
        return out

    # -- particle indexing --------------------------------------------------
    def local_indices(self, x: np.ndarray, y: np.ndarray):
        """CIC corner indices (into the extended arrays) and weights."""
        fx = x / self.dx
        fy = y / self.dy
        ix_g = np.floor(fx).astype(np.int64)
        iy_g = np.floor(fy).astype(np.int64)
        col = ix_g - self.col0 + 1  # owned columns map to 1..cols
        slot = iy_g - self.row0 + 1
        tx = fx - np.floor(fx)
        ty = fy - np.floor(fy)
        return col, slot, tx, ty

    def interpolate(self, ext: np.ndarray, x, y) -> np.ndarray:
        """Gather an extended field at particle positions (CIC)."""
        col, slot, tx, ty = self.local_indices(x, y)
        w00 = (1 - ty) * (1 - tx)
        w01 = (1 - ty) * tx
        w10 = ty * (1 - tx)
        w11 = ty * tx
        out = np.empty((ext.shape[0], x.shape[0]))
        for c in range(ext.shape[0]):
            f = ext[c]
            out[c] = (
                f[slot, col] * w00
                + f[slot, col + 1] * w01
                + f[slot + 1, col] * w10
                + f[slot + 1, col + 1] * w11
            )
        return out

    def deposit(self, x, y, values) -> np.ndarray:
        """CIC-deposit particle values into a fresh extended array."""
        ext_flat = np.zeros((self.rows + 2) * (self.cols + 2))
        if x.shape[0]:
            col, slot, tx, ty = self.local_indices(x, y)
            w00 = (1 - ty) * (1 - tx)
            w01 = (1 - ty) * tx
            w10 = ty * (1 - tx)
            w11 = ty * tx
            w = self.cols + 2
            n = ext_flat.shape[0]
            ext_flat += np.bincount(slot * w + col, weights=values * w00, minlength=n)
            ext_flat += np.bincount(slot * w + col + 1, weights=values * w01, minlength=n)
            ext_flat += np.bincount((slot + 1) * w + col, weights=values * w10, minlength=n)
            ext_flat += np.bincount((slot + 1) * w + col + 1, weights=values * w11, minlength=n)
        return ext_flat.reshape(self.rows + 2, self.cols + 2) / (self.dx * self.dy)


class DistributedFields2D:
    """Field state on one block, with two-phase ghost exchange."""

    def __init__(self, block: Block2D, config: XpicConfig):
        self.block = block
        self.config = config
        self.E = block.zeros_ext()
        self.B = block.zeros_ext()
        self.E_theta = block.zeros_ext()
        self.last_cg_iters = 0

    # -- ghost exchange ----------------------------------------------------
    def halo_exchange(self, comm: Comm, ext: np.ndarray) -> Generator:
        """Fill all ghosts (faces + corners) of an extended array."""
        b = self.block
        # phase 1: x direction (interior rows only)
        if b.px == 1:
            ext[..., :, 0] = ext[..., :, -2]
            ext[..., :, -1] = ext[..., :, 1]
        else:
            right_face = np.ascontiguousarray(ext[..., 1:-1, -2])
            left_face = np.ascontiguousarray(ext[..., 1:-1, 1])
            got_left = yield from comm.sendrecv(
                right_face, dest=b.right, source=b.left,
                sendtag=TAG_X, recvtag=TAG_X,
            )
            got_right = yield from comm.sendrecv(
                left_face, dest=b.left, source=b.right,
                sendtag=TAG_X + 100, recvtag=TAG_X + 100,
            )
            ext[..., 1:-1, 0] = got_left
            ext[..., 1:-1, -1] = got_right
        # phase 2: y direction, full width (propagates corners)
        if b.py == 1:
            ext[..., 0, :] = ext[..., -2, :]
            ext[..., -1, :] = ext[..., 1, :]
        else:
            top_face = np.ascontiguousarray(ext[..., -2, :])
            bottom_face = np.ascontiguousarray(ext[..., 1, :])
            got_bottom = yield from comm.sendrecv(
                top_face, dest=b.up, source=b.down,
                sendtag=TAG_Y, recvtag=TAG_Y,
            )
            got_top = yield from comm.sendrecv(
                bottom_face, dest=b.down, source=b.up,
                sendtag=TAG_Y + 100, recvtag=TAG_Y + 100,
            )
            ext[..., 0, :] = got_bottom
            ext[..., -1, :] = got_top

    # -- distributed CG ------------------------------------------------------
    def _apply_helmholtz(self, comm, dt, ext) -> Generator:
        yield from self.halo_exchange(comm, ext)
        k = (self.config.c * self.config.theta * dt) ** 2
        return self.block.owned(ext) - k * self.block.laplacian(ext)

    def _dot(self, comm, a, b) -> Generator:
        total = yield from comm.allreduce(float(np.sum(a * b)))
        return total

    def _cg(self, comm, dt, b_owned, x0_ext) -> Generator:
        blk = self.block
        x = x0_ext.copy()
        Ax = yield from self._apply_helmholtz(comm, dt, x)
        r = b_owned - Ax
        p_ext = blk.zeros_ext(1)
        p_ext[1:-1, 1:-1] = r
        rs = yield from self._dot(comm, r, r)
        b_norm2 = yield from self._dot(comm, b_owned, b_owned)
        if b_norm2 == 0.0:
            return blk.zeros_ext(1), 0
        tol2 = (self.config.cg_tol**2) * b_norm2
        it = 0
        while rs > tol2 and it < self.config.cg_max_iters:
            Ap = yield from self._apply_helmholtz(comm, dt, p_ext)
            pAp = yield from self._dot(comm, blk.owned(p_ext), Ap)
            alpha = rs / pAp
            x[1:-1, 1:-1] += alpha * blk.owned(p_ext)
            r -= alpha * Ap
            rs_new = yield from self._dot(comm, r, r)
            p_ext[1:-1, 1:-1] = r + (rs_new / rs) * blk.owned(p_ext)
            rs = rs_new
            it += 1
        yield from self.halo_exchange(comm, x)
        return x, it

    def calculate_E(self, comm, dt, rho_owned, J_owned) -> Generator:
        """Distributed implicit field solve on the block decomposition."""
        cfg, blk = self.config, self.block
        ctdt = cfg.c * cfg.theta * dt
        yield from self.halo_exchange(comm, self.B)
        curlB = blk.curl(self.B)
        rhs = blk.owned(self.E) + ctdt * (curlB - 4.0 * np.pi * J_owned / cfg.c)
        total = 0
        for c in range(3):
            x0 = np.array(self.E_theta[c])
            sol, iters = yield from self._cg(comm, dt, rhs[c], x0)
            self.E_theta[c] = sol
            total += iters
        if cfg.theta > 0:
            self.E[:, 1:-1, 1:-1] = (
                self.E_theta[:, 1:-1, 1:-1]
                - (1.0 - cfg.theta) * self.E[:, 1:-1, 1:-1]
            ) / cfg.theta
        else:
            self.E = self.E_theta.copy()
        yield from self.halo_exchange(comm, self.E)
        self.last_cg_iters = total
        return total

    def calculate_B(self, comm, dt) -> Generator:
        """Distributed Faraday update of B from the decentred E field."""
        yield from self.halo_exchange(comm, self.E_theta)
        curlE = self.block.curl(self.E_theta)
        self.B[:, 1:-1, 1:-1] -= self.config.c * dt * curlE
        yield from self.halo_exchange(comm, self.B)

    def field_energy_local(self) -> float:
        """This block's contribution to the total field energy."""
        cell = self.block.dx * self.block.dy
        return 0.5 * cell * float(
            np.sum(self.block.owned(self.E) ** 2)
            + np.sum(self.block.owned(self.B) ** 2)
        )


class DistributedParticles2D:
    """Particles on one block, with two-phase migration and fold."""

    def __init__(self, block: Block2D, species: List[Species]):
        self.block = block
        self.species = species

    def move(self, E_ext, B_ext, dt) -> None:
        """Boris push against the block-extended field arrays (local)."""
        b = self.block
        for sp in self.species:
            if sp.n == 0:
                continue
            qmdt2 = 0.5 * dt * sp.config.charge / sp.config.mass
            Ep = b.interpolate(E_ext, sp.x, sp.y)
            Bp = b.interpolate(B_ext, sp.x, sp.y)
            vminus = sp.v + qmdt2 * Ep
            t = qmdt2 * Bp
            t2 = np.sum(t * t, axis=0)
            s = 2.0 * t / (1.0 + t2)
            vprime = vminus + np.cross(vminus.T, t.T).T
            vplus = vminus + np.cross(vprime.T, s.T).T
            sp.v = vplus + qmdt2 * Ep
            sp.x += dt * sp.v[0]
            sp.y += dt * sp.v[1]
            np.mod(sp.x, b.global_grid.lx, out=sp.x)
            np.mod(sp.y, b.global_grid.ly, out=sp.y)

    def _migrate_axis(self, comm, si, sp, axis) -> Generator:
        b = self.block
        if axis == "x":
            lo, hi, length = b.x0, b.x1, b.global_grid.lx
            coord = sp.x
            dest_plus, dest_minus = b.right, b.left
            tag = TAG_MIG_X + 20 * si
        else:
            lo, hi, length = b.y0, b.y1, b.global_grid.ly
            coord = sp.y
            dest_plus, dest_minus = b.up, b.down
            tag = TAG_MIG_Y + 20 * si
        inside = (coord >= lo) & (coord < hi)
        d_plus = (coord - hi) % length
        d_minus = (lo - coord) % length
        goes_plus = ~inside & (d_plus <= d_minus)
        plus_pack = sp.extract(goes_plus)
        coord = sp.x if axis == "x" else sp.y
        inside2 = (coord >= lo) & (coord < hi)
        minus_pack = sp.extract(~inside2)
        got_minus = yield from comm.sendrecv(
            plus_pack, dest=dest_plus, source=dest_minus,
            sendtag=tag, recvtag=tag,
        )
        got_plus = yield from comm.sendrecv(
            minus_pack, dest=dest_minus, source=dest_plus,
            sendtag=tag + 1, recvtag=tag + 1,
        )
        sp.inject(got_minus)
        sp.inject(got_plus)

    def migrate(self, comm) -> Generator:
        """Two-phase nearest-neighbour migration (x then y) — diagonal
        movers reach their block in two hops."""
        b = self.block
        for si, sp in enumerate(self.species):
            if b.px > 1:
                yield from self._migrate_axis(comm, si, sp, "x")
            if b.py > 1:
                yield from self._migrate_axis(comm, si, sp, "y")

    def gather_moments(self, comm) -> Generator:
        """Deposit rho and J on the block and fold ghosts to the owners."""
        b = self.block
        rho_ext = np.zeros((b.rows + 2, b.cols + 2))
        J_ext = np.zeros((3, b.rows + 2, b.cols + 2))
        for sp in self.species:
            q = np.full(sp.x.shape, sp.charge)
            rho_ext += b.deposit(sp.x, sp.y, q)
            for c in range(3):
                J_ext[c] += b.deposit(sp.x, sp.y, q * sp.v[c])
        stacked = np.concatenate([rho_ext[None, ...], J_ext], axis=0)
        yield from self._fold(comm, stacked)
        return stacked[0, 1:-1, 1:-1], stacked[1:, 1:-1, 1:-1]

    def _fold(self, comm, ext) -> Generator:
        """Add ghost contributions into the owning neighbours
        (x first, then y over the full width: corners fold correctly)."""
        b = self.block
        if b.px == 1:
            ext[..., :, 1] += ext[..., :, -1]
            ext[..., :, -1] = 0.0
        else:
            send_right = np.ascontiguousarray(ext[..., :, -1])
            got = yield from comm.sendrecv(
                send_right, dest=b.right, source=b.left,
                sendtag=TAG_FOLD_X, recvtag=TAG_FOLD_X,
            )
            ext[..., :, 1] += got
            ext[..., :, -1] = 0.0
        if b.py == 1:
            ext[..., 1, :] += ext[..., -1, :]
            ext[..., -1, :] = 0.0
        else:
            send_up = np.ascontiguousarray(ext[..., -1, :])
            got = yield from comm.sendrecv(
                send_up, dest=b.up, source=b.down,
                sendtag=TAG_FOLD_Y, recvtag=TAG_FOLD_Y,
            )
            ext[..., 1, :] += got
            ext[..., -1, :] = 0.0

    def kinetic_energy_local(self) -> float:
        """This block's contribution to the total kinetic energy."""
        return sum(sp.kinetic_energy() for sp in self.species)

    @property
    def n_particles(self) -> int:
        """Macro-particles currently on this block."""
        return sum(sp.n for sp in self.species)


def load_block_species(config: XpicConfig, block: Block2D) -> List[Species]:
    """The reference global population filtered to this block (every
    rank draws the identical sample, as in the 1D decomposition)."""
    rng = np.random.default_rng(config.seed)
    out = []
    for sc in config.species:
        sp_global = maxwellian_species(sc, block.global_grid, rng)
        mask = (
            (sp_global.x >= block.x0)
            & (sp_global.x < block.x1)
            & (sp_global.y >= block.y0)
            & (sp_global.y < block.y1)
        )
        out.append(
            Species(
                sc,
                sp_global.x[mask],
                sp_global.y[mask],
                sp_global.v[:, mask],
                weight=sp_global.weight,
            )
        )
    return out
