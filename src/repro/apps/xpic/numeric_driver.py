"""Numeric (real-physics) partitioned xPic drivers.

Unlike :mod:`repro.apps.xpic.driver` (which charges modeled kernel
times for the performance study), these drivers execute the actual
NumPy physics, domain-decomposed over the simulated MPI — including
the Cluster-Booster mode, where the field solver ranks live on Cluster
nodes and the particle solver ranks on Booster nodes, exchanging real
interface buffers through the inter-communicator.

They exist to *validate* the partition: every mode must produce the
same physics as the single-process reference loop (Listing 1), which
is what the paper means by "codes stay portable and keep the
capability to run out-of-the-box" (section III).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ...hardware.machine import Machine
from ...mpi import MPIRuntime, RankContext
from .config import XpicConfig
from .driver import Mode
from .parallel import (
    DistributedFields,
    DistributedParticles,
    Slab,
    load_slab_species,
)

__all__ = ["run_numeric_experiment", "numeric_fingerprint"]

TAG_NF = 201  # fields cluster -> booster
TAG_NM = 202  # moments booster -> cluster
TAG_NM0 = 203  # initial moments


def numeric_fingerprint(sim) -> Dict[str, float]:
    """Fingerprint of a reference :class:`XpicSimulation` for comparison."""
    return sim.state_fingerprint()


def _allreduced_fingerprint(comm, fields: DistributedFields, particles, rho_owned):
    """Global fingerprint assembled with MPI reductions (all ranks)."""
    fe = yield from comm.allreduce(fields.field_energy_local())
    ke = yield from comm.allreduce(
        particles.kinetic_energy_local() if particles else 0.0
    )
    rho_sum = yield from comm.allreduce(float(np.sum(rho_owned)))
    e2 = yield from comm.allreduce(
        float(np.sum(fields.slab.owned(fields.E) ** 2))
    )
    b2 = yield from comm.allreduce(
        float(np.sum(fields.slab.owned(fields.B) ** 2))
    )
    return {
        "field_energy": fe,
        "kinetic_energy": ke,
        "rho_sum": rho_sum,
        "E_norm": float(np.sqrt(e2)),
        "B_norm": float(np.sqrt(b2)),
    }


# --------------------------------------------------------------------------
# Homogeneous numeric app: both solvers on every rank's slab
# --------------------------------------------------------------------------
def _numeric_homogeneous_app(ctx: RankContext, cfg: XpicConfig, n: int):
    comm = ctx.world
    slab = Slab(cfg, n, comm.rank)
    fields = DistributedFields(slab, cfg)
    particles = DistributedParticles(slab, load_slab_species(cfg, slab))
    rho, J = yield from particles.gather_moments(comm)
    for _ in range(cfg.steps):
        yield from fields.calculate_E(comm, cfg.dt, rho, J)
        particles.move(fields.E_theta, fields.B, cfg.dt)
        yield from particles.migrate(comm)
        rho, J = yield from particles.gather_moments(comm)
        yield from fields.calculate_B(comm, cfg.dt)
    fp = yield from _allreduced_fingerprint(comm, fields, particles, rho)
    return fp


# --------------------------------------------------------------------------
# C+B numeric apps: field ranks on the Cluster, particle ranks on Booster
# --------------------------------------------------------------------------
def _numeric_cluster_app(ctx: RankContext, cfg: XpicConfig, n: int):
    """Field solver (Listing 2) with real numerics."""
    world = ctx.world
    inter = ctx.get_parent()
    partner = world.rank
    slab = Slab(cfg, n, world.rank)
    fields = DistributedFields(slab, cfg)
    rho, J = yield from inter.recv(source=partner, tag=TAG_NM0)
    for _ in range(cfg.steps):
        yield from fields.calculate_E(world, cfg.dt, rho, J)
        # ClusterToBooster: ship the extended E_theta and B (ghosts
        # filled, so the particle side needs no halo of its own)
        req = inter.isend(
            np.concatenate([fields.E_theta, fields.B], axis=0),
            dest=partner,
            tag=TAG_NF,
        )
        yield req.wait()
        rho, J = yield from inter.recv(source=partner, tag=TAG_NM)
        yield from fields.calculate_B(world, cfg.dt)
    fp = yield from _allreduced_fingerprint(world, fields, None, rho)
    # hand the field-side fingerprint to the booster side
    yield from inter.send(fp, dest=partner, tag=TAG_NM0)
    return fp


def _numeric_booster_app(
    ctx: RankContext, cfg: XpicConfig, n: int, cluster_nodes: Sequence
):
    """Particle solver (Listing 3) with real numerics."""
    world = ctx.world
    inter = yield from world.spawn(
        lambda c: _numeric_cluster_app(c, cfg, n),
        cluster_nodes,
        nprocs=world.size,
        name="xpic-numeric-fields",
        startup_cost_s=0.0,
    )
    partner = world.rank
    slab = Slab(cfg, n, world.rank)
    particles = DistributedParticles(slab, load_slab_species(cfg, slab))
    rho, J = yield from particles.gather_moments(world)
    yield from inter.send((rho, J), dest=partner, tag=TAG_NM0)
    for _ in range(cfg.steps):
        buf = yield from inter.recv(source=partner, tag=TAG_NF)
        E_theta_ext, B_ext = buf[:3], buf[3:]
        particles.move(E_theta_ext, B_ext, cfg.dt)
        yield from particles.migrate(world)
        rho, J = yield from particles.gather_moments(world)
        req = inter.isend((rho, J), dest=partner, tag=TAG_NM)
        yield req.wait()
    cluster_fp = yield from inter.recv(source=partner, tag=TAG_NM0)
    ke = yield from world.allreduce(particles.kinetic_energy_local())
    cluster_fp = dict(cluster_fp)
    cluster_fp["kinetic_energy"] = ke
    return cluster_fp


# --------------------------------------------------------------------------
# Runner
# --------------------------------------------------------------------------
def run_numeric_experiment(
    machine: Machine,
    mode: Mode,
    config: XpicConfig,
    nodes_per_solver: int = 1,
) -> Dict[str, float]:
    """Run the real physics in the given mode; returns the global
    fingerprint (identical across modes up to floating-point noise)."""
    mode = Mode(mode)
    n = nodes_per_solver
    rt = MPIRuntime(machine)
    if mode in (Mode.CLUSTER, Mode.BOOSTER):
        nodes = machine.cluster[:n] if mode is Mode.CLUSTER else machine.booster[:n]
        results = rt.run_app(
            lambda c: _numeric_homogeneous_app(c, config, n), nodes
        )
        return results[0]
    results = rt.run_app(
        lambda c: _numeric_booster_app(c, config, n, machine.cluster[:n]),
        machine.booster[:n],
    )
    return results[0]
