"""Workload accounting for the xPic performance experiments.

For the benchmark runs (Figs 7 and 8) the driver executes the xPic main
loop *structurally* on the simulated machine: every phase is charged
through the calibrated kernel cost model and every message crosses the
fabric model with its physical size.  This module derives those per-rank
work and message quantities from a run configuration and a node count
(strong scaling over row slabs, as in the paper's Fig 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ...perfmodel import Kernel, field_kernel, particle_kernel
from ...perfmodel.calibration import CG_ITERS_PER_STEP, PARTICLE_STATE_BYTES
from .config import XpicConfig
from .interface import fields_nbytes

__all__ = ["StepWorkload", "build_workload", "LOAD_IMBALANCE_ALPHA"]

#: Growth rate of particle-solver load imbalance with node count:
#: imbalance(n) = 1 + alpha * log2(n).  Spatially clustering plasma makes
#: equal-area slabs carry unequal particle counts at scale.
LOAD_IMBALANCE_ALPHA = 0.03

#: Fraction of a solver's compute time spent in overlappable auxiliary
#: computations (energy diagnostics, post-processing; Listing 2/3 lines
#: "Auxiliary computations" / "I/O and auxiliary computations").
AUX_FRACTION = 0.03

#: The Implicit Moment Method's field solve consumes the full moment
#: set: charge density, current (3) and the pressure tensor (6) per
#: species [Markidis et al. 2010], so the Booster->Cluster interface
#: buffer carries 10 moments per species per cell.
IMM_MOMENTS_PER_SPECIES = 10

#: Output snapshot cadence (steps between field/moment dumps).
IO_EVERY_STEPS = 10

#: Aggregate bandwidth of the storage servers (section II-B: two
#: BeeGFS storage servers on spinning disks).
STORAGE_AGG_BW_BPS = 2.0e9

#: Metadata-server cost per task-local file operation.  Task-local
#: output makes this grow linearly with rank count — the exact
#: bottleneck SIONlib exists to remove (section III-C).
METADATA_OP_S = 0.8e-3


@dataclass(frozen=True)
class StepWorkload:
    """Per-rank, per-step work and message sizes for one run setup."""

    nodes_per_solver: int
    cells_per_rank: int
    particles_per_rank: int
    field_kernel: Kernel
    particle_kernel: Kernel
    aux_field_kernel: Kernel
    aux_particle_kernel: Kernel
    #: field-solver halo traffic per step, aggregated over CG iterations
    field_halo_nbytes: int
    #: number of latency-bound rounds in the field solve per step
    #: (dot-product allreduces: 2 per CG iteration)
    field_allreduce_count: int
    #: particles leaving a slab per step, per boundary
    migrants_per_boundary: int
    #: moment halo-add exchange per step (one row of rho + J)
    moment_halo_nbytes: int
    #: interface buffers crossing Cluster<->Booster each step (C+B mode)
    fields_exchange_nbytes: int
    moments_exchange_nbytes: int
    #: per-rank output volume of one snapshot (fields + moments)
    io_snapshot_nbytes: int = 0
    #: dynamic load balancing (extension): equalize particle counts by
    #: periodically re-partitioning slabs, trading imbalance for
    #: repartition traffic
    load_balanced: bool = False
    rebalance_every: int = 20
    rebalance_nbytes: int = 0
    #: imbalance growth rate in effect for this workload
    imbalance_alpha: float = LOAD_IMBALANCE_ALPHA

    def io_snapshot_time(self) -> float:
        """Wall time of one task-local snapshot write.

        The global volume streams at the storage servers' aggregate
        bandwidth; every rank's file open/close serializes at the
        metadata server, so the per-snapshot cost grows with rank count
        (the task-local-I/O pathology SIONlib addresses).
        """
        n = self.nodes_per_solver
        stream = n * self.io_snapshot_nbytes / STORAGE_AGG_BW_BPS
        metadata = n * METADATA_OP_S
        return stream + metadata

    def imbalance_factor(self, rank: int) -> float:
        """Per-rank particle-load multiplier (mean 1 across ranks).

        With dynamic load balancing enabled the slabs track the plasma
        and every rank carries the mean load.
        """
        n = self.nodes_per_solver
        if n == 1 or self.load_balanced:
            return 1.0
        peak = 1.0 + self.imbalance_alpha * math.log2(n)
        if rank == 0:
            return peak
        return (n - peak) / (n - 1)


def build_workload(
    config: XpicConfig,
    nodes_per_solver: int,
    load_balanced: bool = False,
    imbalance_alpha: float = LOAD_IMBALANCE_ALPHA,
) -> StepWorkload:
    """Derive the per-rank step workload for ``nodes_per_solver`` nodes.

    Strong scaling: the global Table II problem is split into row slabs,
    one rank (one node) per slab and per solver.  ``load_balanced``
    enables the dynamic repartitioning extension.
    """
    n = nodes_per_solver
    if n < 1:
        raise ValueError("need at least one node per solver")
    if config.ny % n != 0:
        raise ValueError(f"ny={config.ny} not divisible by {n} slabs")
    cells_rank = config.cells // n
    particles_rank = config.total_particles // n

    fk = field_kernel(cells_rank, steps=1)
    pk = particle_kernel(particles_rank, steps=1)

    # Halo: one boundary row (nx nodes) of 3 components, both directions,
    # per CG iteration, 8-byte reals.
    halo_row = config.nx * 3 * 8
    field_halo = halo_row * CG_ITERS_PER_STEP if n > 1 else 0

    # Migration: particles within one step's travel of a slab boundary.
    # Travel depth ~ thermal velocity x dt; slab height ly/n.
    vth = max(s.thermal_velocity for s in config.species)
    depth = min(vth * config.dt, config.ly / n)
    migrants = int(particles_rank * depth / (config.ly / n) / 2) if n > 1 else 0

    moment_halo = config.nx * 4 * 8 if n > 1 else 0

    return StepWorkload(
        nodes_per_solver=n,
        cells_per_rank=cells_rank,
        particles_per_rank=particles_rank,
        field_kernel=fk,
        particle_kernel=pk,
        aux_field_kernel=fk.scaled(AUX_FRACTION),
        aux_particle_kernel=pk.scaled(AUX_FRACTION),
        field_halo_nbytes=field_halo,
        field_allreduce_count=2 * CG_ITERS_PER_STEP,
        migrants_per_boundary=migrants,
        moment_halo_nbytes=moment_halo,
        fields_exchange_nbytes=fields_nbytes(cells_rank),
        moments_exchange_nbytes=IMM_MOMENTS_PER_SPECIES
        * config.nspec
        * cells_rank
        * 8,
        io_snapshot_nbytes=(6 + IMM_MOMENTS_PER_SPECIES * config.nspec)
        * cells_rank
        * 8,
        load_balanced=load_balanced,
        # repartition ships the excess particles off the hot rank: the
        # imbalance fraction of its load, amortized over the window
        rebalance_nbytes=int(
            imbalance_alpha
            * math.log2(max(n, 2))
            * particles_rank
            * PARTICLE_STATE_BYTES
        )
        if (load_balanced and n > 1)
        else 0,
        imbalance_alpha=imbalance_alpha,
    )


def migration_nbytes(workload: StepWorkload) -> int:
    """Wire size of one boundary's migration message."""
    return workload.migrants_per_boundary * PARTICLE_STATE_BYTES
