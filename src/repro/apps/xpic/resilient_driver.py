"""Resilient numeric xPic: real physics + real checkpoints (sec III-D).

Closes the loop between the application and the resiliency stack: the
actual simulation state (particles, fields, moments) is captured into
SCR buddy checkpoints at its true byte size, a node failure wipes the
in-memory state, and the run resumes from the restored payload — on a
spare node — producing *bit-identical* physics to an uninterrupted run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ...hardware.machine import Machine
from ...mpi.datatypes import payload_nbytes
from ...perfmodel import field_kernel, particle_kernel, time_on_node
from ...resiliency import SCR, CheckpointLevel
from .config import XpicConfig
from .simulation import XpicSimulation

__all__ = ["capture_state", "restore_state", "run_resilient", "ResilientRunResult"]


def capture_state(sim: XpicSimulation) -> Dict:
    """Snapshot everything needed to restart the simulation."""
    return {
        "step_count": sim.step_count,
        "E": sim.fields.E.copy(),
        "B": sim.fields.B.copy(),
        "E_theta": sim.fields.E_theta.copy(),
        "rho": sim.rho.copy(),
        "J": sim.J.copy(),
        "species": [
            {"x": sp.x.copy(), "y": sp.y.copy(), "v": sp.v.copy(),
             "weight": sp.weight}
            for sp in sim.species
        ],
    }


def restore_state(sim: XpicSimulation, state: Dict) -> None:
    """Load a captured snapshot back into a (fresh) simulation."""
    sim.step_count = state["step_count"]
    sim.fields.E = state["E"].copy()
    sim.fields.B = state["B"].copy()
    sim.fields.E_theta = state["E_theta"].copy()
    sim.rho = state["rho"].copy()
    sim.J = state["J"].copy()
    if len(state["species"]) != len(sim.species):
        raise ValueError("species mismatch between snapshot and simulation")
    for sp, saved in zip(sim.species, state["species"]):
        sp.x = saved["x"].copy()
        sp.y = saved["y"].copy()
        sp.v = saved["v"].copy()
        sp.weight = saved["weight"]


@dataclass
class ResilientRunResult:
    """Outcome of a resilient run."""

    fingerprint: Dict[str, float]
    steps_completed: int
    checkpoints_written: int
    failed: bool
    restarted_from_step: Optional[int]
    wall_time_s: float
    checkpoint_nbytes: int


def run_resilient(
    machine: Machine,
    config: XpicConfig,
    ckpt_every: int = 5,
    fail_at_step: Optional[int] = None,
) -> ResilientRunResult:
    """Run the numeric simulation with SCR buddy checkpointing.

    The physics executes for real; per-step wall time is charged from
    the kernel cost model on the executing Booster node.  If
    ``fail_at_step`` is set, the node dies right after that step: the
    run restarts on a spare node from the newest buddy checkpoint and
    continues to completion.
    """
    if ckpt_every < 1:
        raise ValueError("ckpt_every must be >= 1")
    if fail_at_step is not None and not 0 < fail_at_step < config.steps:
        raise ValueError("fail_at_step must fall inside the run")
    nodes = machine.booster[:2]  # rank 0 + its buddy
    spare = machine.booster[2]
    scr = SCR(machine.sim, nodes, machine.fabric)
    sim_app = XpicSimulation(config)
    step_cost = time_on_node(
        nodes[0], particle_kernel(config.total_particles)
    ) + time_on_node(nodes[0], field_kernel(config.cells))
    state = {
        "failed": False,
        "restart_step": None,
        "ckpts": 0,
        "nbytes": 0,
    }

    def job(sim):
        nonlocal sim_app
        step = 0
        while step < config.steps:
            yield sim.timeout(step_cost)
            sim_app.step()
            step += 1
            if step % ckpt_every == 0:
                payload = capture_state(sim_app)
                nbytes = payload_nbytes(payload)
                state["nbytes"] = nbytes
                yield from scr.checkpoint(
                    0, step=step, nbytes=nbytes,
                    level=CheckpointLevel.BUDDY, payload=payload,
                )
                state["ckpts"] += 1
            if fail_at_step is not None and step == fail_at_step and not state["failed"]:
                # the node dies: in-memory state and local NVMe gone
                nodes[0].fail()
                state["failed"] = True
                sim_app = XpicSimulation(config)  # cold process on spare
                restart_step = scr.latest_restartable_step([0])
                if restart_step is None:
                    raise RuntimeError("failure before the first checkpoint")
                yield from scr.restart(0, step=restart_step, onto=spare)
                restore_state(sim_app, scr.last_restored_payload)
                scr.replace_node(0, spare)
                state["restart_step"] = restart_step
                step = restart_step

        return sim_app.state_fingerprint()

    t0 = machine.sim.now
    fp = machine.sim.run_process(job(machine.sim))
    return ResilientRunResult(
        fingerprint=fp,
        steps_completed=config.steps,
        checkpoints_written=state["ckpts"],
        failed=state["failed"],
        restarted_from_step=state["restart_step"],
        wall_time_s=machine.sim.now - t0,
        checkpoint_nbytes=state["nbytes"],
    )
