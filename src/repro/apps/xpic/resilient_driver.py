"""Resilient xPic drivers: checkpoint/restart under live fault injection.

Two layers close the loop between the application and the resiliency
stack:

* :func:`run_resilient` — the *numeric* simulation: actual physics
  state (particles, fields, moments) is captured into SCR buddy
  checkpoints at its true byte size, a node failure wipes the in-memory
  state, and the run resumes from the restored payload — on a spare
  node — producing *bit-identical* physics to an uninterrupted run.

* :func:`run_resilient_experiment` — the *modeled* partitioned drivers
  of :mod:`.driver` supervised through crash/recovery epochs: a
  :class:`~repro.resiliency.inject.FaultInjector` kills nodes and links
  mid-run, every rank aborts (ParaStation-style global job abort), the
  supervisor restores the newest checkpoint level that survived, swaps
  spare nodes in (or reboots), and re-runs the remaining steps — with
  graceful degradation to a homogeneous-Cluster run when the Booster
  partition becomes unreachable.  Lost/rework time is quantified in the
  returned resiliency report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import networkx as nx
import numpy as np

from ...hardware.machine import Machine
from ...io.beegfs import BeeGFS
from ...mpi import FaultTolerancePolicy, MPIRuntime
from ...mpi.datatypes import payload_nbytes
from ...mpi.errors import TransportError
from ...nam.device import NAMDevice
from ...network.fabric import NodeFailedError, NoRouteError
from ...perfmodel import field_kernel, particle_kernel, time_on_node
from ...perfmodel.calibration import PARTICLE_STATE_BYTES
from ...resiliency import SCR, CheckpointLevel, FaultInjector, FaultPlan
from ...sim import Interrupt
from ...sim.events import AllOf
from .config import XpicConfig
from .driver import (
    Mode,
    RunResult,
    _aggregate,
    _booster_particle_app,
    _homogeneous_app,
)
from .simulation import XpicSimulation
from .workload import build_workload

__all__ = [
    "capture_state",
    "restore_state",
    "run_resilient",
    "ResilientRunResult",
    "ResilienceHooks",
    "run_resilient_experiment",
]

#: a rank hitting any of these mid-epoch is a *recoverable* job abort
ABORT_EXCEPTIONS = (
    Interrupt,
    TransportError,
    NodeFailedError,
    nx.exception.NetworkXNoPath,
)


def capture_state(sim: XpicSimulation) -> Dict:
    """Snapshot everything needed to restart the simulation."""
    return {
        "step_count": sim.step_count,
        "E": sim.fields.E.copy(),
        "B": sim.fields.B.copy(),
        "E_theta": sim.fields.E_theta.copy(),
        "rho": sim.rho.copy(),
        "J": sim.J.copy(),
        "species": [
            {"x": sp.x.copy(), "y": sp.y.copy(), "v": sp.v.copy(),
             "weight": sp.weight}
            for sp in sim.species
        ],
    }


def restore_state(sim: XpicSimulation, state: Dict) -> None:
    """Load a captured snapshot back into a (fresh) simulation."""
    sim.step_count = state["step_count"]
    sim.fields.E = state["E"].copy()
    sim.fields.B = state["B"].copy()
    sim.fields.E_theta = state["E_theta"].copy()
    sim.rho = state["rho"].copy()
    sim.J = state["J"].copy()
    if len(state["species"]) != len(sim.species):
        raise ValueError("species mismatch between snapshot and simulation")
    for sp, saved in zip(sim.species, state["species"]):
        sp.x = saved["x"].copy()
        sp.y = saved["y"].copy()
        sp.v = saved["v"].copy()
        sp.weight = saved["weight"]


@dataclass
class ResilientRunResult:
    """Outcome of a resilient run."""

    fingerprint: Dict[str, float]
    steps_completed: int
    checkpoints_written: int
    failed: bool
    restarted_from_step: Optional[int]
    wall_time_s: float
    checkpoint_nbytes: int


def run_resilient(
    machine: Machine,
    config: XpicConfig,
    ckpt_every: int = 5,
    fail_at_step: Optional[int] = None,
) -> ResilientRunResult:
    """Run the numeric simulation with SCR buddy checkpointing.

    The physics executes for real; per-step wall time is charged from
    the kernel cost model on the executing Booster node.  If
    ``fail_at_step`` is set, the node dies right after that step: the
    run restarts on a spare node from the newest buddy checkpoint and
    continues to completion.
    """
    if ckpt_every < 1:
        raise ValueError("ckpt_every must be >= 1")
    if fail_at_step is not None and not 0 < fail_at_step < config.steps:
        raise ValueError("fail_at_step must fall inside the run")
    nodes = machine.booster[:2]  # rank 0 + its buddy
    spare = machine.booster[2]
    scr = SCR(machine.sim, nodes, machine.fabric)
    sim_app = XpicSimulation(config)
    step_cost = time_on_node(
        nodes[0], particle_kernel(config.total_particles)
    ) + time_on_node(nodes[0], field_kernel(config.cells))
    state = {
        "failed": False,
        "restart_step": None,
        "ckpts": 0,
        "nbytes": 0,
    }

    def job(sim):
        nonlocal sim_app
        step = 0
        while step < config.steps:
            yield sim.timeout(step_cost)
            sim_app.step()
            step += 1
            if step % ckpt_every == 0:
                payload = capture_state(sim_app)
                nbytes = payload_nbytes(payload)
                state["nbytes"] = nbytes
                yield from scr.checkpoint(
                    0, step=step, nbytes=nbytes,
                    level=CheckpointLevel.BUDDY, payload=payload,
                )
                state["ckpts"] += 1
            if fail_at_step is not None and step == fail_at_step and not state["failed"]:
                # the node dies: in-memory state and local NVMe gone
                nodes[0].fail()
                state["failed"] = True
                sim_app = XpicSimulation(config)  # cold process on spare
                restart_step = scr.latest_restartable_step([0])
                if restart_step is None:
                    raise RuntimeError("failure before the first checkpoint")
                yield from scr.restart(0, step=restart_step, onto=spare)
                restore_state(sim_app, scr.last_restored_payload)
                scr.replace_node(0, spare)
                state["restart_step"] = restart_step
                step = restart_step

        return sim_app.state_fingerprint()

    t0 = machine.sim.now
    fp = machine.sim.run_process(job(machine.sim))
    return ResilientRunResult(
        fingerprint=fp,
        steps_completed=config.steps,
        checkpoints_written=state["ckpts"],
        failed=state["failed"],
        restarted_from_step=state["restart_step"],
        wall_time_s=machine.sim.now - t0,
        checkpoint_nbytes=state["nbytes"],
    )


# --------------------------------------------------------------------------
# Fault-injected modeled experiments (epoch supervisor)
# --------------------------------------------------------------------------
class ResilienceHooks:
    """Per-epoch glue between the modeled drivers and the SCR manager.

    Handed to the :mod:`.driver` apps as their ``resil`` argument: it
    tells each rank where to resume (``start_step``), decides — once
    per step, for all ranks consistently — whether the Young/Daly
    cadence calls for a checkpoint, and wraps rank generators so that
    faults turn into collectable abort markers instead of simulator
    crashes.  With no checkpoint interval configured,
    :meth:`maybe_checkpoint` yields nothing at all.
    """

    def __init__(self, scr: SCR, start_step: int, ckpt_nbytes: int):
        self.scr = scr
        self.start_step = start_step
        self.ckpt_nbytes = ckpt_nbytes
        #: step -> whether that step ends with a checkpoint (the first
        #: rank to reach the step decides for everyone, so checkpoint
        #: sets stay aligned across ranks)
        self._decisions: Dict[int, bool] = {}
        #: step -> slowest rank's checkpoint duration (job-level cost)
        self.round_costs: Dict[int, float] = {}
        #: sim times at which wrapped ranks aborted
        self.abort_times: List[float] = []

    def maybe_checkpoint(self, ctx, step: int):
        """Checkpoint this rank at the end of ``step`` if it is time."""
        if self.scr.checkpoint_interval_s is None:
            return
        decision = self._decisions.get(step)
        if decision is None:
            decision = self.scr.need_checkpoint()
            self._decisions[step] = decision
        if not decision:
            return
        rank = ctx.world.rank
        t0 = ctx.sim.now
        yield from self.scr.checkpoint(
            rank, step=step + 1, nbytes=self.ckpt_nbytes
        )
        cost = ctx.sim.now - t0
        self.round_costs[step + 1] = max(
            self.round_costs.get(step + 1, 0.0), cost
        )

    def wrap(self, app_fn):
        """Fail-soft wrapper: returns ``("ok", result)`` or
        ``("aborted", exception)`` instead of crashing the simulator."""

        def wrapped(ctx):
            try:
                result = yield from app_fn(ctx)
            except ABORT_EXCEPTIONS as exc:
                self.abort_times.append(ctx.sim.now)
                return ("aborted", exc)
            return ("ok", result)

        return wrapped


def _estimate_ckpt_nbytes(config: XpicConfig, wl) -> int:
    """Per-rank restart state: particle state + field/moment arrays."""
    return int(
        wl.particles_per_rank * PARTICLE_STATE_BYTES + wl.io_snapshot_nbytes
    )


def _estimate_ckpt_cost_s(scr: SCR, nbytes: int) -> float:
    """Analytic cost of one buddy checkpoint (feeds Young/Daly)."""
    node = scr.nodes[0]
    cost = node.nvme.write_time(nbytes) if node.nvme else nbytes / 1e9
    if len(scr.nodes) > 1:
        buddy = scr.nodes[1]
        cost += scr.fabric.transfer_time(
            node.node_id, buddy.node_id, nbytes
        )
        if buddy.nvme:
            cost += buddy.nvme.write_time(nbytes)
    return cost


def _drain(sim, rt, injector) -> None:
    """Run the event loop to quiescence, absorbing transport failures.

    Library helper processes (e.g. the collective isends a communicator
    spawns internally) are not registered with the runtime, so when a
    node crash kills their transfer mid-flight the failure escapes
    ``sim.run`` instead of reaching a supervised rank.  The epoch is
    lost either way: absorb the failure, abort any ranks still live,
    and keep draining until the queue is quiet.
    """
    while True:
        try:
            sim.run()
            return
        except ABORT_EXCEPTIONS:
            injector.stop()
            for p in rt.live_processes():
                p.interrupt(cause="epoch aborted")


def run_resilient_experiment(
    machine: Machine,
    mode: Mode,
    config: XpicConfig,
    fault_plan: Optional[FaultPlan] = None,
    mtbf_s: Optional[float] = None,
    fault_targets: Optional[Sequence[str]] = None,
    fault_seed: int = 20180521,
    ckpt_interval_s: Optional[float] = None,
    nodes_per_solver: int = 1,
    overlap: bool = True,
    swap_placement: bool = False,
    tracer=None,
    load_balanced: bool = False,
    imbalance_alpha: Optional[float] = None,
    runtime: Optional[MPIRuntime] = None,
    transport_policy: Optional[FaultTolerancePolicy] = None,
    allow_reboot: bool = True,
    max_epochs: int = 200,
):
    """Run one modeled xPic experiment under fault injection.

    Mirrors :func:`~repro.apps.xpic.driver.run_experiment` but drives
    the rank processes through crash/recovery *epochs*: the fault
    injector replays ``fault_plan`` (or streams Poisson node crashes at
    the system ``mtbf_s`` over ``fault_targets``, defaulting to the
    job's primary nodes); a crash of a job node aborts every rank;
    the supervisor restores the newest step that every rank can read
    back from the cheapest surviving checkpoint level, replaces dead
    nodes with spares of the same kind (or reboots them — their NVMe
    contents stay lost — when ``allow_reboot``), and relaunches the
    remaining steps.  In C+B mode, if the Booster partition becomes
    unreachable (no healthy nodes and no reboot, or no surviving fabric
    route), the run degrades to homogeneous-Cluster mode and completes
    there.

    ``ckpt_interval_s`` defaults to the Young/Daly optimum when an MTBF
    is known.  Returns ``(RunResult, resiliency_dict)``; the resiliency
    dict quantifies faults, retries, checkpoints by level, restarts,
    and lost work seconds.
    """
    mode = Mode(mode)
    n = nodes_per_solver
    wl_kwargs = {"load_balanced": load_balanced}
    if imbalance_alpha is not None:
        wl_kwargs["imbalance_alpha"] = imbalance_alpha
    wl = build_workload(config, n, **wl_kwargs)
    sim = machine.sim
    rt = runtime if runtime is not None else MPIRuntime(
        machine,
        fault_tolerance=(
            transport_policy
            if transport_policy is not None
            else FaultTolerancePolicy(max_retries=2, backoff_base_s=1e-4)
        ),
    )
    if rt.machine is not machine:
        raise ValueError("runtime belongs to a different machine")

    # -- node selection (mirrors run_experiment) --------------------------
    if mode is Mode.CB:
        cluster_nodes = list(machine.cluster[:n])
        booster_nodes = list(machine.booster[:n])
        if len(cluster_nodes) < n or len(booster_nodes) < n:
            raise ValueError("not enough nodes for C+B mode")
        if swap_placement:
            cluster_nodes, booster_nodes = booster_nodes, cluster_nodes
        primary_nodes = booster_nodes  # the ranks that checkpoint
    else:
        pool = machine.cluster if mode is Mode.CLUSTER else machine.booster
        primary_nodes = list(pool[:n])
        if len(primary_nodes) < n:
            raise ValueError(f"machine has only {len(primary_nodes)} {mode.value} nodes")
        cluster_nodes = []

    # -- SCR over the primary side (plus a buddy spare for 1-node jobs) ---
    ckpt_nbytes = _estimate_ckpt_nbytes(config, wl)
    scr_nodes = list(primary_nodes)
    if len(scr_nodes) == 1:
        kind = scr_nodes[0].kind
        buddy = next(
            (
                nd
                for nd in machine.nodes_of_kind(kind)
                if nd not in scr_nodes and nd not in cluster_nodes
                and not nd.failed
            ),
            None,
        )
        if buddy is not None:
            scr_nodes.append(buddy)
    fs = BeeGFS(machine) if machine.storage else None
    nam = NAMDevice(machine, machine.nams[0]) if machine.nams else None
    scr = SCR(sim, scr_nodes, machine.fabric, fs=fs, nam=nam)
    if ckpt_interval_s is None and mtbf_s is not None:
        from ...resiliency import optimal_interval

        ckpt_interval_s = optimal_interval(
            _estimate_ckpt_cost_s(scr, ckpt_nbytes), mtbf_s
        )
    scr.checkpoint_interval_s = ckpt_interval_s

    # -- fault injector ---------------------------------------------------
    targets = (
        list(fault_targets)
        if fault_targets is not None
        else [nd.node_id for nd in primary_nodes]
    )
    injector = FaultInjector(
        machine,
        plan=fault_plan,
        mtbf_s=mtbf_s,
        targets=targets,
        seed=fault_seed,
    )
    job_node_ids = {nd.node_id for nd in primary_nodes}
    job_node_ids.update(nd.node_id for nd in cluster_nodes)
    crash_info = {"time": None}

    def _on_fault(ev):
        # a dead job node dooms the whole job (ParaStation aborts all
        # ranks); faults elsewhere are survived by retry/reroute
        if ev.kind != "node_crash" or ev.target not in job_node_ids:
            return
        if crash_info["time"] is None:
            crash_info["time"] = sim.now
        for p in rt.live_processes():
            p.interrupt(cause=f"node {ev.target} crashed")

    injector.on_fault(_on_fault)

    # -- supervisor state --------------------------------------------------
    stats = {
        "restarts": 0,
        "reboots": 0,
        "node_replacements": 0,
        "lost_work_s": 0.0,
        "restart_costs": [],
        "restored_steps": [],
        "degraded_mode": False,
    }
    ranks = list(range(n))
    hooks_list: List[ResilienceHooks] = []
    start_step = 0
    epochs = 0
    final_values = None
    job_start = sim.now

    def _ckpt_time_of(step: int) -> Optional[float]:
        times = [rec.time for rec in scr.database if rec.step == step]
        return max(times) if times else None

    def _replace_or_reboot(nodes: List) -> bool:
        """Heal dead nodes in one side's list; False if impossible."""
        for rank, node in enumerate(nodes):
            if not node.failed:
                continue
            spare = next(
                (
                    nd
                    for nd in machine.nodes_of_kind(node.kind)
                    if not nd.failed
                    and nd not in primary_nodes
                    and nd not in cluster_nodes
                    and nd not in scr_nodes
                ),
                None,
            )
            if spare is not None:
                nodes[rank] = spare
                if nodes is primary_nodes:
                    scr.replace_node(rank, spare)
                stats["node_replacements"] += 1
            elif allow_reboot:
                machine.fabric.restore_node(node.node_id)
                stats["reboots"] += 1
            else:
                return False
        return True

    def _booster_reachable() -> bool:
        try:
            machine.fabric.directed_route(
                cluster_nodes[0].node_id, primary_nodes[0].node_id
            )
        except nx.exception.NetworkXNoPath:
            return False
        return True

    # -- epoch loop --------------------------------------------------------
    while True:
        epochs += 1
        if epochs > max_epochs:
            raise RuntimeError(
                f"job did not complete within {max_epochs} epochs"
            )
        hooks = ResilienceHooks(scr, start_step, ckpt_nbytes)
        hooks_list.append(hooks)
        epoch_start = sim.now
        crash_info["time"] = None
        if mode is Mode.CB:
            app = hooks.wrap(
                lambda c: _booster_particle_app(
                    c, config, wl, cluster_nodes,
                    overlap=overlap, tracer=tracer, resil=hooks,
                )
            )
        else:
            app = hooks.wrap(
                lambda c: _homogeneous_app(c, config, wl, resil=hooks)
            )
        procs = rt.launch(app, primary_nodes, nprocs=n)
        injector.start()
        settled = AllOf(sim, procs)
        settled.callbacks.append(lambda _ev: injector.stop())
        _drain(sim, rt, injector)
        if not all(p.triggered for p in procs) or rt.live_processes():
            # partial abort (e.g. one rank died of a transport error and
            # its peers are blocked on it): abort the stragglers too
            injector.stop()
            for p in rt.live_processes():
                p.interrupt(cause="epoch aborted")
            _drain(sim, rt, injector)
        values = [p.value for p in procs]
        if all(tag == "ok" for tag, _ in values):
            final_values = [payload for _tag, payload in values]
            break

        # ---- recovery ----------------------------------------------------
        abort_time = crash_info["time"]
        if abort_time is None:
            abort_time = min(hooks.abort_times, default=sim.now)
        restart_step = scr.latest_restartable_step(ranks)
        ref = _ckpt_time_of(restart_step) if restart_step is not None else None
        if ref is None or ref < epoch_start:
            ref = epoch_start
        stats["lost_work_s"] += max(0.0, abort_time - ref)
        healed = _replace_or_reboot(primary_nodes)
        if cluster_nodes:
            healed = _replace_or_reboot(cluster_nodes) and healed
        if mode is Mode.CB and (not healed or not _booster_reachable()):
            # Booster partition unreachable: degrade to a homogeneous
            # Cluster run for the remaining steps
            mode = Mode.CLUSTER
            stats["degraded_mode"] = True
            if not _replace_or_reboot(cluster_nodes):
                raise RuntimeError("no healthy Cluster nodes to degrade onto")
            primary_nodes = cluster_nodes
            cluster_nodes = []
            for rank in ranks:
                scr.replace_node(rank, primary_nodes[rank])
        elif not healed:
            raise RuntimeError("no healthy nodes left to restart the job on")
        start_step = restart_step if restart_step is not None else 0
        if restart_step is not None:
            # charge the (parallel) checkpoint read-back
            t0 = sim.now
            restore_procs = [
                sim.process(
                    scr.restart(rank, restart_step, onto=primary_nodes[rank])
                )
                for rank in ranks
            ]
            sim.run()
            for rp in restore_procs:
                if not rp.triggered or not rp.ok:
                    raise RuntimeError("checkpoint restore failed")
            stats["restart_costs"].append(sim.now - t0)
            stats["restored_steps"].append(restart_step)
        stats["restarts"] += 1

    injector.stop()
    _drain(sim, rt, injector)  # drain any pending injector interrupt
    end = sim.now

    # -- aggregate timers of the completing epoch -------------------------
    if mode is Mode.CB:
        booster_timers = [v[0] for v in final_values]
        cluster_timers = [v[1] for v in final_values]
    else:
        booster_timers = list(final_values)
        cluster_timers = []
    result = _aggregate(mode, n, config.steps, booster_timers, cluster_timers)
    if stats["restarts"] or epochs > 1:
        # faulted job: report the full wall time, launch to completion
        # (lost work, restart reads and re-run epochs included) — the
        # barrier-to-end window of the last epoch would hide the cost
        result = RunResult(
            mode=result.mode,
            nodes_per_solver=result.nodes_per_solver,
            steps=result.steps,
            total_runtime=end - job_start,
            fields_time=result.fields_time,
            particles_time=result.particles_time,
            inter_module_comm_time=result.inter_module_comm_time,
        )

    round_costs: Dict[int, float] = {}
    for hooks in hooks_list:
        for step, cost in hooks.round_costs.items():
            round_costs[step] = max(round_costs.get(step, 0.0), cost)
    ckpt_costs = list(round_costs.values())
    resiliency = {
        "enabled": True,
        "mtbf_s": mtbf_s,
        "ckpt_interval_s": ckpt_interval_s,
        "faults": injector.metrics(),
        "transport": rt.transport_metrics(),
        "checkpoints": scr.level_counts(),
        "checkpoints_total": len(scr.database),
        "degraded_checkpoints": scr.degraded_checkpoints,
        "checkpoint_rounds": len(ckpt_costs),
        "checkpoint_cost_s": (
            sum(ckpt_costs) / len(ckpt_costs) if ckpt_costs else 0.0
        ),
        "checkpoint_time_s": sum(ckpt_costs),
        "restarts": stats["restarts"],
        "restart_cost_s": (
            sum(stats["restart_costs"]) / len(stats["restart_costs"])
            if stats["restart_costs"]
            else 0.0
        ),
        "restart_time_s": sum(stats["restart_costs"]),
        "restored_steps": stats["restored_steps"],
        "lost_work_s": stats["lost_work_s"],
        "node_replacements": stats["node_replacements"],
        "reboots": stats["reboots"],
        "degraded_mode": stats["degraded_mode"],
        "epochs": epochs,
        # throughput over the completing epoch: after the last recovery
        # (or the whole run when nothing failed) — the denominator of
        # the malleable-vs-static recovery comparison
        "post_fault": {
            "steps": config.steps - hooks_list[-1].start_step,
            "window_s": end - epoch_start,
            "steps_per_s": (
                (config.steps - hooks_list[-1].start_step)
                / (end - epoch_start)
                if end > epoch_start
                else 0.0
            ),
        },
    }
    return result, resiliency
