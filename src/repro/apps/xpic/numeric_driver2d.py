"""Numeric xPic drivers over the 2D block decomposition.

Same contract as :mod:`repro.apps.xpic.numeric_driver`: every mode must
produce the reference physics — now with a ``px x py`` process grid.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ...hardware.machine import Machine
from ...mpi import MPIRuntime, RankContext
from .config import XpicConfig
from .driver import Mode
from .parallel2d import (
    Block2D,
    DistributedFields2D,
    DistributedParticles2D,
    load_block_species,
)

__all__ = ["run_numeric_experiment_2d"]

TAG_NF = 211
TAG_NM = 212
TAG_NM0 = 213


def _fingerprint(comm, fields, particles, rho_owned):
    fe = yield from comm.allreduce(fields.field_energy_local())
    ke = yield from comm.allreduce(
        particles.kinetic_energy_local() if particles else 0.0
    )
    rho_sum = yield from comm.allreduce(float(np.sum(rho_owned)))
    e2 = yield from comm.allreduce(
        float(np.sum(fields.block.owned(fields.E) ** 2))
    )
    b2 = yield from comm.allreduce(
        float(np.sum(fields.block.owned(fields.B) ** 2))
    )
    return {
        "field_energy": fe,
        "kinetic_energy": ke,
        "rho_sum": rho_sum,
        "E_norm": float(np.sqrt(e2)),
        "B_norm": float(np.sqrt(b2)),
    }


def _homogeneous_app(ctx: RankContext, cfg: XpicConfig, layout):
    comm = ctx.world
    block = Block2D(cfg, layout, comm.rank)
    fields = DistributedFields2D(block, cfg)
    particles = DistributedParticles2D(block, load_block_species(cfg, block))
    rho, J = yield from particles.gather_moments(comm)
    for _ in range(cfg.steps):
        yield from fields.calculate_E(comm, cfg.dt, rho, J)
        particles.move(fields.E_theta, fields.B, cfg.dt)
        yield from particles.migrate(comm)
        rho, J = yield from particles.gather_moments(comm)
        yield from fields.calculate_B(comm, cfg.dt)
    fp = yield from _fingerprint(comm, fields, particles, rho)
    return fp


def _cluster_app(ctx: RankContext, cfg: XpicConfig, layout):
    world = ctx.world
    inter = ctx.get_parent()
    partner = world.rank
    block = Block2D(cfg, layout, world.rank)
    fields = DistributedFields2D(block, cfg)
    rho, J = yield from inter.recv(source=partner, tag=TAG_NM0)
    for _ in range(cfg.steps):
        yield from fields.calculate_E(world, cfg.dt, rho, J)
        req = inter.isend(
            np.concatenate([fields.E_theta, fields.B], axis=0),
            dest=partner,
            tag=TAG_NF,
        )
        yield req.wait()
        rho, J = yield from inter.recv(source=partner, tag=TAG_NM)
        yield from fields.calculate_B(world, cfg.dt)
    fp = yield from _fingerprint(world, fields, None, rho)
    yield from inter.send(fp, dest=partner, tag=TAG_NM0)
    return fp


def _booster_app(ctx: RankContext, cfg: XpicConfig, layout, cluster_nodes):
    world = ctx.world
    inter = yield from world.spawn(
        lambda c: _cluster_app(c, cfg, layout),
        cluster_nodes,
        nprocs=world.size,
        name="xpic-2d-fields",
        startup_cost_s=0.0,
    )
    partner = world.rank
    block = Block2D(cfg, layout, world.rank)
    particles = DistributedParticles2D(block, load_block_species(cfg, block))
    rho, J = yield from particles.gather_moments(world)
    yield from inter.send((rho, J), dest=partner, tag=TAG_NM0)
    for _ in range(cfg.steps):
        buf = yield from inter.recv(source=partner, tag=TAG_NF)
        particles.move(buf[:3], buf[3:], cfg.dt)
        yield from particles.migrate(world)
        rho, J = yield from particles.gather_moments(world)
        req = inter.isend((rho, J), dest=partner, tag=TAG_NM)
        yield req.wait()
    fp = yield from inter.recv(source=partner, tag=TAG_NM0)
    ke = yield from world.allreduce(particles.kinetic_energy_local())
    fp = dict(fp)
    fp["kinetic_energy"] = ke
    return fp


def run_numeric_experiment_2d(
    machine: Machine,
    mode: Mode,
    config: XpicConfig,
    layout: Tuple[int, int] = (2, 2),
) -> Dict[str, float]:
    """Run the real physics block-decomposed as ``layout = (px, py)``."""
    mode = Mode(mode)
    n = layout[0] * layout[1]
    rt = MPIRuntime(machine)
    if mode in (Mode.CLUSTER, Mode.BOOSTER):
        nodes = machine.cluster[:n] if mode is Mode.CLUSTER else machine.booster[:n]
        results = rt.run_app(lambda c: _homogeneous_app(c, config, layout), nodes)
        return results[0]
    results = rt.run_app(
        lambda c: _booster_app(c, config, layout, machine.cluster[:n]),
        machine.booster[:n],
    )
    return results[0]
