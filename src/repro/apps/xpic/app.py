"""Engine-facing runner of the xPic app (registry entry point).

Translates an :class:`~repro.engine.ExperimentSpec` into the right
driver call — plain (:func:`~.driver.run_experiment`), fault-injected
(:func:`~.resilient_driver.run_resilient_experiment`), or malleable
(:func:`~repro.resiliency.malleable.run_malleable_experiment`) — and
normalizes the outcome into the engine's uniform
``(result_obj, result_dict, resiliency, malleability)`` shape.
"""

from __future__ import annotations

import dataclasses

from ...partition import Partition
from ...resiliency import FaultPlan
from ..registry import register
from .config import table2_setup
from .driver import normalize_mode, run_experiment
from .resilient_driver import run_resilient_experiment

__all__ = ["run_xpic"]


@register(
    "xpic",
    normalize_mode=lambda m: normalize_mode(m).value,
    supports_resiliency=True,
    supports_malleability=True,
)
def run_xpic(spec, machine, runtime, tracer):
    """Run one xPic experiment as described by ``spec``."""
    cfg = spec.config
    if cfg is None:
        cfg = table2_setup(steps=spec.steps)
        if spec.seed != cfg.seed:
            cfg = dataclasses.replace(cfg, seed=spec.seed)
    partition = (
        Partition.from_dict(spec.partition)
        if spec.partition is not None
        else None
    )
    resiliency: dict = {}
    malleability: dict = {}
    if spec.wants_malleability:
        # the supervisor sits above this driver layer; import lazily
        from ...resiliency.malleable import (
            MalleabilityPolicy,
            run_malleable_experiment,
        )

        plan = (
            FaultPlan.from_dict(spec.fault_plan)
            if spec.fault_plan is not None
            else None
        )
        rr, resiliency, malleability = run_malleable_experiment(
            machine,
            normalize_mode(spec.mode),
            cfg,
            partition=partition,
            policy=MalleabilityPolicy.from_dict(spec.malleability),
            fault_plan=plan,
            mtbf_s=spec.mtbf_s,
            ckpt_interval_s=spec.ckpt_interval_s,
            fault_seed=spec.seed,
            nodes_per_solver=spec.nodes_per_solver,
            overlap=spec.overlap,
            swap_placement=spec.swap_placement,
            tracer=tracer,
            runtime=runtime,
        )
    elif spec.wants_resiliency:
        plan = (
            FaultPlan.from_dict(spec.fault_plan)
            if spec.fault_plan is not None
            else None
        )
        rr, resiliency = run_resilient_experiment(
            machine,
            normalize_mode(spec.mode),
            cfg,
            fault_plan=plan,
            mtbf_s=spec.mtbf_s,
            ckpt_interval_s=spec.ckpt_interval_s,
            fault_seed=spec.seed,
            nodes_per_solver=spec.nodes_per_solver,
            overlap=spec.overlap,
            swap_placement=spec.swap_placement,
            tracer=tracer,
            load_balanced=spec.load_balanced,
            imbalance_alpha=spec.imbalance_alpha,
            runtime=runtime,
        )
    else:
        rr = run_experiment(
            machine,
            normalize_mode(spec.mode),
            cfg,
            nodes_per_solver=spec.nodes_per_solver,
            overlap=spec.overlap,
            swap_placement=spec.swap_placement,
            tracer=tracer,
            load_balanced=spec.load_balanced,
            imbalance_alpha=spec.imbalance_alpha,
            runtime=runtime,
            partition=partition,
        )
    result = {
        "app": "xpic",
        "mode": rr.mode.value,
        "nodes_per_solver": rr.nodes_per_solver,
        "steps": rr.steps,
        "total_runtime": rr.total_runtime,
        "fields_time": rr.fields_time,
        "particles_time": rr.particles_time,
        "inter_module_comm_time": rr.inter_module_comm_time,
        "comm_overhead_fraction": rr.comm_overhead_fraction,
    }
    if partition is not None:
        result["partition"] = partition.to_dict()
        result["partition_label"] = partition.label()
    return rr, result, resiliency, malleability
