"""The particle solver: Newton's equation for charged macro-particles.

``r, v = f(E, B)`` in the paper's Fig 5: fields are gathered at particle
positions (CIC interpolation) and velocities advanced with the Boris
rotation scheme — the standard, energy-stable integrator used by PIC
production codes (xPic's implicit mover reduces to it for theta = 1/2 in
the explicit limit; we document this substitution in DESIGN.md).

Everything is fully vectorized over particles, per the guide's
"vectorize for loops" rule.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .config import SpeciesConfig
from .grid import Grid2D
from .moments import deposit_moments, interpolate

__all__ = ["Species", "maxwellian_species"]


class Species:
    """Macro-particles of one plasma species on (a slab of) the grid."""

    def __init__(
        self,
        config: SpeciesConfig,
        x: np.ndarray,
        y: np.ndarray,
        velocities: np.ndarray,
        weight: float = 1.0,
    ):
        if velocities.shape != (3, x.shape[0]) or y.shape != x.shape:
            raise ValueError("inconsistent particle array shapes")
        if weight <= 0:
            raise ValueError("macro-particle weight must be positive")
        self.config = config
        self.x = np.asarray(x, dtype=np.float64)
        self.y = np.asarray(y, dtype=np.float64)
        self.v = np.asarray(velocities, dtype=np.float64)
        #: Macro-particle statistical weight: physical charge carried is
        #: ``config.charge * weight``.  Standard PIC normalization uses
        #: weight = cell area / particles-per-cell so the species number
        #: density is ~1 and the plasma stays in normalized units.
        self.weight = float(weight)

    @property
    def n(self) -> int:
        """Number of macro-particles currently held."""
        return self.x.shape[0]

    @property
    def charge(self) -> float:
        """Charge carried by one macro-particle."""
        return self.config.charge * self.weight

    @property
    def mass(self) -> float:
        """Mass carried by one macro-particle."""
        return self.config.mass * self.weight

    # -- physics ------------------------------------------------------------
    def move(self, grid: Grid2D, E: np.ndarray, B: np.ndarray, dt: float) -> None:
        """Boris push: half E-kick, B-rotation, half E-kick, then drift."""
        if self.n == 0:
            return
        qmdt2 = 0.5 * dt * self.charge / self.mass
        Ep = interpolate(grid, E, self.x, self.y)  # (3, N)
        Bp = interpolate(grid, B, self.x, self.y)

        # half electric acceleration
        vminus = self.v + qmdt2 * Ep
        # magnetic rotation
        t = qmdt2 * Bp
        t2 = np.sum(t * t, axis=0)
        s = 2.0 * t / (1.0 + t2)
        vprime = vminus + np.cross(vminus.T, t.T).T
        vplus = vminus + np.cross(vprime.T, s.T).T
        # second half electric acceleration
        self.v = vplus + qmdt2 * Ep

        # position drift (2D positions, 3D velocities)
        self.x += dt * self.v[0]
        self.y += dt * self.v[1]
        grid.wrap_positions(self.x, self.y)

    def moments(self, grid: Grid2D):
        """Charge and current density of this species (moment gathering)."""
        return deposit_moments(grid, self.x, self.y, self.v, self.charge)

    # -- diagnostics ----------------------------------------------------------
    def kinetic_energy(self) -> float:
        """Total kinetic energy carried by this species' macro-particles."""
        return 0.5 * self.mass * float(np.sum(self.v * self.v))

    def momentum(self) -> np.ndarray:
        """Total momentum vector of the species."""
        return self.mass * self.v.sum(axis=1)

    def total_charge(self) -> float:
        """Total charge carried by the species."""
        return self.charge * self.n

    # -- migration support (domain decomposition) ----------------------------
    def extract(self, mask: np.ndarray) -> dict:
        """Remove particles selected by ``mask`` and return them packed."""
        packed = {
            "x": self.x[mask].copy(),
            "y": self.y[mask].copy(),
            "v": self.v[:, mask].copy(),
        }
        keep = ~mask
        self.x = self.x[keep]
        self.y = self.y[keep]
        self.v = self.v[:, keep]
        return packed

    def inject(self, packed: dict) -> None:
        """Append particles previously packed by :meth:`extract`."""
        self.x = np.concatenate([self.x, packed["x"]])
        self.y = np.concatenate([self.y, packed["y"]])
        self.v = np.concatenate([self.v, packed["v"]], axis=1)


def maxwellian_species(
    config: SpeciesConfig,
    grid: Grid2D,
    rng: np.random.Generator,
    y_range: Optional[tuple] = None,
) -> Species:
    """Uniformly loaded species with Maxwellian velocities.

    ``y_range`` restricts loading to a slab (for domain decomposition);
    defaults to the whole domain.
    """
    y0, y1 = y_range if y_range is not None else (0.0, grid.ly)
    frac = (y1 - y0) / grid.ly
    n = int(round(config.particles_per_cell * grid.cells * frac))
    x = rng.uniform(0.0, grid.lx, size=n)
    y = rng.uniform(y0, y1, size=n)
    v = rng.normal(0.0, config.thermal_velocity, size=(3, n))
    v += np.asarray(config.drift_velocity).reshape(3, 1)
    # Weight so the species number density is ~1 in normalized units.
    weight = grid.dx * grid.dy / max(config.particles_per_cell, 1)
    return Species(config, x, y, v, weight=weight)
