"""The field solver: Maxwell's equations with the implicit theta scheme.

``E, B = f(rho, J)`` in the paper's Fig 5.  Following the Implicit
Moment Method [Markidis et al. 2010], the electric field at the
decentered time level is the solution of a Helmholtz-type elliptic
problem::

    (I - (c theta dt)^2 laplacian) E^{n+theta}
        = E^n + c theta dt (curl B^n - J)

solved matrix-free with conjugate gradients (our own CG so the
iteration structure — dot products and stencil applications — is
explicit and countable).  The magnetic field then advances with the
discrete Faraday law::

    B^{n+1} = B^n - c dt curl E^{n+theta}

This is a simplified (electromagnetic, divergence-uncorrected) variant
of xPic's solver; the computational *structure* — one CG solve per step
over the grid, followed by a curl update — matches, which is what the
performance study needs.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from .grid import Grid2D

__all__ = ["FieldSolver", "conjugate_gradient"]


def conjugate_gradient(
    apply_A: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_iters: int = 200,
    dot: Optional[Callable[[np.ndarray, np.ndarray], float]] = None,
) -> Tuple[np.ndarray, int]:
    """Matrix-free CG; returns (solution, iterations).

    ``dot`` can be overridden with a distributed reduction for the
    domain-decomposed solver.
    """
    if dot is None:
        dot = lambda u, v: float(np.sum(u * v))  # noqa: E731
    x = np.zeros_like(b) if x0 is None else x0.copy()
    r = b - apply_A(x)
    p = r.copy()
    rs = dot(r, r)
    b_norm = np.sqrt(dot(b, b))
    if b_norm == 0.0:
        return np.zeros_like(b), 0
    it = 0
    while np.sqrt(rs) > tol * b_norm and it < max_iters:
        Ap = apply_A(p)
        alpha = rs / dot(p, Ap)
        x += alpha * p
        r -= alpha * Ap
        rs_new = dot(r, r)
        p = r + (rs_new / rs) * p
        rs = rs_new
        it += 1
    return x, it


class FieldSolver:
    """Electromagnetic field state and implicit solver on a grid."""

    def __init__(
        self,
        grid: Grid2D,
        c: float = 1.0,
        theta: float = 0.5,
        cg_tol: float = 1e-8,
        cg_max_iters: int = 200,
    ):
        self.grid = grid
        self.c = c
        self.theta = theta
        self.cg_tol = cg_tol
        self.cg_max_iters = cg_max_iters
        self.E = grid.vector_zeros()
        self.B = grid.vector_zeros()
        self.E_theta = grid.vector_zeros()
        self.last_cg_iters = 0

    # -- operators ------------------------------------------------------------
    def _helmholtz(self, dt: float, f: np.ndarray) -> np.ndarray:
        k = (self.c * self.theta * dt) ** 2
        return f - k * self.grid.laplacian(f)

    # -- solver steps -----------------------------------------------------
    def calculate_E(self, dt: float, rho: np.ndarray, J: np.ndarray) -> int:
        """Solve for E^{n+theta} given the gathered moments.

        Returns the total CG iteration count (summed over components).
        """
        if J.shape != self.E.shape:
            raise ValueError("current density must be a 3-component field")
        ctdt = self.c * self.theta * dt
        curlB = self.grid.curl(self.B)
        rhs = self.E + ctdt * (curlB - 4.0 * np.pi * J / self.c)
        total_iters = 0
        for comp in range(3):
            self.E_theta[comp], iters = conjugate_gradient(
                lambda f: self._helmholtz(dt, f),
                rhs[comp],
                x0=self.E_theta[comp],
                tol=self.cg_tol,
                max_iters=self.cg_max_iters,
            )
            total_iters += iters
        # advance to n+1: E^{n+1} = (E^{n+theta} - (1-theta) E^n) / theta
        if self.theta > 0:
            self.E = (self.E_theta - (1.0 - self.theta) * self.E) / self.theta
        else:
            self.E = self.E_theta.copy()
        self.last_cg_iters = total_iters
        return total_iters

    def calculate_B(self, dt: float) -> None:
        """Discrete Faraday law using the decentered electric field."""
        self.B = self.B - self.c * dt * self.grid.curl(self.E_theta)

    def clean_divergence(self, rho: np.ndarray) -> float:
        """Divergence cleaning: restore Gauss's law (IMM codes apply
        this periodically to control charge-conservation drift).

        Spectral Poisson correction consistent with the code's central
        differences: solve ``div grad phi = div E - 4 pi rho`` in
        Fourier space using the central-difference symbol, then subtract
        ``grad phi`` from E.  Modes the central difference cannot see
        (k = 0 and Nyquist) are left untouched.  Returns the RMS
        Gauss-law violation after cleaning.
        """
        if rho.shape != self.grid.shape:
            raise ValueError("rho must live on the grid")
        g = self.grid
        residual = self.grid.divergence(self.E) - 4.0 * np.pi * rho
        r_hat = np.fft.fft2(residual)
        kx = np.fft.fftfreq(g.nx) * g.nx
        ky = np.fft.fftfreq(g.ny) * g.ny
        # eigenvalues of the central first difference: i*sin(2 pi k/N)/dx
        sx = np.sin(2.0 * np.pi * kx / g.nx) / g.dx
        sy = np.sin(2.0 * np.pi * ky / g.ny) / g.dy
        denom = -(sx[None, :] ** 2 + sy[:, None] ** 2)
        with np.errstate(divide="ignore", invalid="ignore"):
            phi_hat = np.where(np.abs(denom) > 1e-14, r_hat / denom, 0.0)
        phi = np.real(np.fft.ifft2(phi_hat))
        self.E[0] -= g.ddx(phi)
        self.E[1] -= g.ddy(phi)
        return self.gauss_law_residual(rho)

    def gauss_law_residual(self, rho: np.ndarray) -> float:
        """RMS of (div E - 4 pi rho), the Gauss-law violation."""
        r = self.grid.divergence(self.E) - 4.0 * np.pi * rho
        return float(np.sqrt(np.mean((r - r.mean()) ** 2)))

    # -- diagnostics ------------------------------------------------------
    def field_energy(self) -> float:
        """Total electromagnetic field energy on the grid."""
        cell = self.grid.dx * self.grid.dy
        return 0.5 * cell * float(np.sum(self.E**2) + np.sum(self.B**2))

    def div_B(self) -> float:
        """Max |div B| — conserved at 0 by the curl update on this mesh."""
        return float(np.max(np.abs(self.grid.divergence(self.B))))
