"""xPic through the OmpSs offload pragmas — approach (2) of section IV-B.

The xPic developers chose raw ``MPI_Comm_spawn`` (approach 1, in
:mod:`repro.apps.xpic.driver`); this module is the road not taken: the
same main loop expressed as OmpSs tasks with data-dependency clauses
and device targets, so the runtime derives the field->particle->field
pipeline from the ``fields``/``moments`` buffers and moves them across
the fabric automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...hardware.machine import Machine
from ...mpi.datatypes import Bytes
from ...ompss import OmpSsRuntime, TaskState
from .config import XpicConfig
from .workload import build_workload

__all__ = ["OmpssRunResult", "run_xpic_ompss"]


@dataclass
class OmpssRunResult:
    """Outcome of an OmpSs-offload xPic run."""

    total_runtime: float
    steps: int
    tasks_completed: int
    bytes_offloaded: int


def run_xpic_ompss(
    machine: Machine,
    config: XpicConfig,
    steps: int = None,
) -> OmpssRunResult:
    """Run the Table II workload as an OmpSs task graph.

    Per step: a ``calculateE`` task targeted at the Cluster (consuming
    the moment buffer, producing the field buffer) and a
    ``particles`` task targeted at the Booster (consuming the fields,
    producing the next moments).  The dependency chain serializes them
    exactly like the spawn-based pipeline; the runtime charges the
    interface-buffer transfers whenever a task runs on the other
    module.
    """
    steps = config.steps if steps is None else steps
    wl = build_workload(config, 1)
    rt = OmpSsRuntime(
        machine, home="cluster", cluster_workers=1, booster_workers=1
    )
    fields_buf = Bytes(wl.fields_exchange_nbytes)
    moments_buf = Bytes(wl.moments_exchange_nbytes)
    rt.set_data("moments", moments_buf)

    def field_body(moments, _out=fields_buf):
        return _out

    def particle_body(fields, _out=moments_buf):
        return _out

    for step in range(steps):
        rt.submit(
            field_body,
            name=f"calculateE_{step}",
            ins=["moments"],
            outs=["fields"],
            target="cluster",
            kernel=wl.field_kernel,
        )
        rt.submit(
            particle_body,
            name=f"particles_{step}",
            ins=["fields"],
            outs=["moments"],
            target="booster",
            kernel=wl.particle_kernel,
        )
    start = machine.sim.now
    rt.run()
    done = sum(1 for t in rt.tasks if t.state is TaskState.COMPLETED)
    return OmpssRunResult(
        total_runtime=machine.sim.now - start,
        steps=steps,
        tasks_completed=done,
        bytes_offloaded=rt.transfers_bytes,
    )
