"""Co-design applications (section IV) behind a name-keyed registry.

Two workloads ship today — :mod:`repro.apps.xpic` (the Space Weather
particle-in-cell code, Figs 5-8) and :mod:`repro.apps.seismic` (the
full-waveform-inversion stencil) — and each registers an engine runner
under its name via :mod:`repro.apps.registry`.  ``ExperimentSpec``,
the engine dispatch, and the CLI all resolve apps through
:func:`get_app`/:func:`available_apps`, so future ROADMAP workloads
plug in by registering themselves rather than editing the engine.
"""

from .registry import App, available_apps, get_app, register

# importing the app modules runs their @register decorators; every
# consumer of the registry goes through this package, so the registry
# is always populated before it is queried
from .seismic import app as _seismic_app  # noqa: F401
from .xpic import app as _xpic_app  # noqa: F401

__all__ = ["App", "available_apps", "get_app", "register"]
