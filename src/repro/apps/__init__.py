"""Co-design applications (section IV).  Currently: xPic."""
