"""The canonical partition type: how an experiment is laid out on nodes.

Historically every layer described a placement its own way — the
autotuner had ``PartitionConfig``, the perfmodel took loose
``(cluster_node, booster_node)`` arguments, ``ExperimentSpec`` carried
``mode``/``nodes_per_solver``/``overlap``/``swap_placement`` kwargs,
and a few bench runners passed bare ``(cluster, booster)`` tuples.
:class:`Partition` replaces all of those shapes with one frozen value
type that every layer shares; the old shapes keep working behind
:meth:`Partition.coerce` and a deprecation shim in
:mod:`repro.autotune`.

A partition is a small tree:

* A **flat** partition is a leaf — ``Partition(4, 4)`` is the C+B
  split with four ranks per side, ``Partition(8, 0)`` a homogeneous
  Cluster run.
* A **nested** partition splits one homogeneous side into co-scheduled
  solver sub-phases (after the recursive partitioning schemes of
  Kelly/Ghattas/Sundar): ``Partition(16, 0,
  cluster_arm=Partition(8, 8))`` takes sixteen Cluster nodes and runs
  the field solver on eight of them *concurrently* with the particle
  solver on the other eight — the C+B driver topology mapped onto one
  homogeneous pool.  The arm's ``overlap`` knob carries through.

Nesting is deliberately shallow (depth two): the driver pairs solver
ranks one to one, so an arm must be a symmetric split whose total
equals the parent side's node count, and arms cannot themselves grow
arms.  Heterogeneous (C+B) roots are already split across the backbone
and take no arms.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["Partition"]


@dataclass(frozen=True, eq=False)
class Partition:
    """One point of the (possibly hierarchical) partition space.

    ``cluster_nodes``/``booster_nodes`` are the ranks given to each
    side: one side zero means a homogeneous run on the other side;
    both non-zero means the C+B split (the driver pairs the sides one
    to one, so the counts must match).  ``overlap`` and
    ``swap_placement`` only distinguish split runs and are normalized
    to their defaults for homogeneous ones, so equivalent layouts
    collapse onto one canonical value (and one cache key).

    ``cluster_arm``/``booster_arm`` optionally sub-split a homogeneous
    root into co-scheduled field/particle sub-phases; see the module
    docstring for the (deliberately strict) shape rules.
    """

    cluster_nodes: int = 1
    booster_nodes: int = 1
    overlap: bool = True
    swap_placement: bool = False
    cluster_arm: Optional["Partition"] = None
    booster_arm: Optional["Partition"] = None

    def __post_init__(self):
        if self.cluster_nodes < 0 or self.booster_nodes < 0:
            raise ValueError("node counts cannot be negative")
        if self.cluster_nodes == 0 and self.booster_nodes == 0:
            raise ValueError("partition needs nodes on at least one side")
        if (
            self.cluster_nodes > 0
            and self.booster_nodes > 0
            and self.cluster_nodes != self.booster_nodes
        ):
            raise ValueError(
                "the C+B driver pairs sides one to one: cluster and "
                "booster ranks must match"
            )
        if self.cluster_nodes == 0 or self.booster_nodes == 0:
            # overlap/placement only exist for split runs: canonicalize
            object.__setattr__(self, "overlap", True)
            object.__setattr__(self, "swap_placement", False)
        self._check_arms()

    def _check_arms(self) -> None:
        if self.cluster_arm is None and self.booster_arm is None:
            return
        if self.cluster_nodes and self.booster_nodes:
            raise ValueError(
                "a C+B partition is already split across the backbone "
                "and cannot carry arms"
            )
        if self.cluster_arm is not None and not self.cluster_nodes:
            raise ValueError("cluster_arm on a partition with no cluster side")
        if self.booster_arm is not None and not self.booster_nodes:
            raise ValueError("booster_arm on a partition with no booster side")
        arm = self.arm
        if not isinstance(arm, Partition):
            raise TypeError("partition arms must be Partition instances")
        if arm.cluster_arm is not None or arm.booster_arm is not None:
            raise ValueError("partition nesting is at most two levels deep")
        if arm.cluster_nodes != arm.booster_nodes or not arm.cluster_nodes:
            raise ValueError(
                "an arm co-schedules the two solvers on one pool: it "
                "must be a symmetric k+k split"
            )
        if arm.swap_placement:
            raise ValueError(
                "swap_placement is meaningless inside a homogeneous "
                "pool: both arms run on the same node kind"
            )
        side = self.cluster_nodes or self.booster_nodes
        if arm.cluster_nodes + arm.booster_nodes != side:
            raise ValueError(
                f"arm splits {arm.cluster_nodes}+{arm.booster_nodes} "
                f"nodes but the parent side has {side}"
            )

    # -- value semantics ----------------------------------------------------
    def _key(self) -> tuple:
        """Comparison key: compares equal across subclasses (the
        deprecated ``PartitionConfig`` shim *is* a ``Partition``) and
        orders flat partitions exactly as the pre-1.8 tuple order did
        (``None`` arms sort as empty tuples, i.e. first)."""
        return (
            self.cluster_nodes,
            self.booster_nodes,
            self.overlap,
            self.swap_placement,
            self.cluster_arm._key() if self.cluster_arm else (),
            self.booster_arm._key() if self.booster_arm else (),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __lt__(self, other) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self._key() < other._key()

    # -- shape --------------------------------------------------------------
    @property
    def mode(self) -> str:
        """The engine mode this partition maps to."""
        if self.booster_nodes == 0:
            return "Cluster"
        if self.cluster_nodes == 0:
            return "Booster"
        return "C+B"

    @property
    def arm(self) -> Optional["Partition"]:
        """The sub-split of a nested partition (``None`` when flat)."""
        return self.cluster_arm if self.cluster_arm is not None \
            else self.booster_arm

    @property
    def is_nested(self) -> bool:
        """True when this partition carries a hierarchical sub-split."""
        return self.arm is not None

    @property
    def nodes_per_solver(self) -> int:
        """Ranks each solver gets: Fig 8's x-axis for flat layouts,
        the sub-split width ``k`` for a nested ``k+k`` arm."""
        if self.is_nested:
            return self.arm.cluster_nodes
        return max(self.cluster_nodes, self.booster_nodes)

    @property
    def total_nodes(self) -> int:
        """Nodes the partition claims across both sides."""
        return self.cluster_nodes + self.booster_nodes

    def label(self) -> str:
        """Compact human-readable form: ``C+B 4+4``, ``Cluster 8``, or
        ``Cluster 16 (8+8 split)`` for a nested layout."""
        if self.mode == "C+B":
            text = f"C+B {self.cluster_nodes}+{self.booster_nodes}"
            if not self.overlap:
                text += " no-overlap"
            if self.swap_placement:
                text += " swapped"
            return text
        text = f"{self.mode} {self.total_nodes}"
        if self.is_nested:
            k = self.arm.cluster_nodes
            text += f" ({k}+{k} split)"
            if not self.arm.overlap:
                text += " no-overlap"
        return text

    # -- mapping onto the experiment engine ---------------------------------
    def to_spec(
        self,
        steps: int,
        preset: str = "deep-er",
        seed: int = 20180521,
        config=None,
        **kwargs,
    ):
        """The :class:`~repro.engine.ExperimentSpec` of this partition.

        Flat partitions produce the exact pre-1.8 spec shape (no
        ``partition`` field), so their cache keys are stable; nested
        ones carry themselves in ``spec.partition``.
        """
        import dataclasses

        from .engine import ExperimentSpec

        if config is not None and config.steps != steps:
            config = dataclasses.replace(config, steps=steps)
        if self.is_nested:
            kwargs = dict(kwargs, partition=self.to_dict())
        return ExperimentSpec(
            preset=preset,
            app="xpic",
            mode=self.mode,
            steps=steps,
            nodes_per_solver=self.nodes_per_solver,
            overlap=self.overlap,
            swap_placement=self.swap_placement,
            seed=seed,
            config=config,
            **kwargs,
        )

    # -- (de)serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict form (the shape stored in cache keys and
        reports).  Flat partitions serialize to the exact four-key
        shape the pre-1.8 ``PartitionConfig`` produced — absent arms
        are omitted, not ``None``-valued — so stored reports and cache
        keys survive the redesign."""
        d = {
            "cluster_nodes": self.cluster_nodes,
            "booster_nodes": self.booster_nodes,
            "overlap": self.overlap,
            "swap_placement": self.swap_placement,
        }
        if self.cluster_arm is not None:
            d["cluster_arm"] = self.cluster_arm.to_dict()
        if self.booster_arm is not None:
            d["booster_arm"] = self.booster_arm.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Partition":
        d = dict(d)
        for key in ("cluster_arm", "booster_arm"):
            arm = d.get(key)
            if isinstance(arm, dict):
                d[key] = Partition.from_dict(arm)
        return cls(**d)

    @classmethod
    def coerce(cls, obj) -> "Partition":
        """Normalize any historical partition shape to a ``Partition``.

        Accepts a ``Partition`` (returned as is), the dict form, or —
        behind a :class:`DeprecationWarning` — the legacy bare
        ``(cluster_nodes, booster_nodes)`` tuple the bench runners used
        to pass around.
        """
        if isinstance(obj, Partition):
            return obj
        if isinstance(obj, dict):
            return cls.from_dict(obj)
        if isinstance(obj, (tuple, list)) and 2 <= len(obj) <= 4:
            warnings.warn(
                "bare (cluster_nodes, booster_nodes) partition tuples are "
                "deprecated; pass a repro.partition.Partition",
                DeprecationWarning,
                stacklevel=2,
            )
            return Partition(*obj)
        raise TypeError(
            f"cannot interpret {obj!r} as a Partition (expected a "
            "Partition, its dict form, or a legacy (cluster, booster) "
            "tuple)"
        )
