"""The unified experiment engine: one instrumented run path.

Every consumer of the stack — CLI, claims validation, the Fig 7/8
runners, examples — describes a run as a declarative
:class:`ExperimentSpec` (machine preset, app, mode/placement, steps)
and hands it to the :class:`Engine`, which builds the machine, the MPI
runtime, and the instrumentation hub, executes the app driver, and
returns a structured :class:`RunReport` carrying the app-level result
*and* metrics from every layer (simulator, fabric links, MPI
communicators, traced phases).

This mirrors how the real DEEP-ER prototype gives one launch/measure
path (ParaStation startup + system-wide monitoring) to every
application, instead of each experiment hand-wiring its own stack.

Typical use::

    from repro.engine import Engine, ExperimentSpec

    report = Engine().run(ExperimentSpec(mode="C+B", steps=100))
    print(report.total_runtime, report.network["total_bytes"])
    report.save_chrome_trace("run.trace.json")
"""

from __future__ import annotations

import dataclasses
import json
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from .apps import available_apps, get_app
from .apps.seismic import SeismicPlacement  # noqa: F401  (re-export)
from .apps.xpic import Mode, normalize_mode, table2_setup  # noqa: F401
from .apps.xpic.config import SpeciesConfig, XpicConfig
from .hardware.machine import (
    Machine,
    build_deep_er_prototype,
    build_jureca_like,
)
from .instrument import MetricsHub
from .mpi import FaultTolerancePolicy, MPIRuntime
from .resiliency import FaultPlan
from .sim import Simulator, Tracer, resolve_backend

__all__ = [
    "ExperimentSpec",
    "RunReport",
    "SweepReport",
    "Engine",
    "MACHINE_PRESETS",
    "REPORT_SCHEMA",
    "SWEEP_SCHEMA",
    "preset_machine",
]

#: schema tag of the RunReport JSON export (bump on breaking change)
REPORT_SCHEMA = "repro.run_report/1"

#: schema tag of the SweepReport JSON export
SWEEP_SCHEMA = "repro.sweep_report/1"

#: machine presets: name -> builder taking (sim=..., **overrides)
MACHINE_PRESETS = {
    "deep-er": build_deep_er_prototype,
    "jureca": build_jureca_like,
}

def preset_machine(
    preset: str = "deep-er", sim: Optional[Simulator] = None, **overrides
) -> Machine:
    """Build a machine preset through the spec path (the one place
    machine/topology construction is wired up)."""
    return ExperimentSpec(
        preset=preset, machine_overrides=overrides
    ).build_machine(sim=sim)


def _config_to_dict(cfg: Optional[XpicConfig]) -> Optional[dict]:
    return None if cfg is None else dataclasses.asdict(cfg)


def _config_from_dict(d: Optional[dict]) -> Optional[XpicConfig]:
    if d is None:
        return None
    d = dict(d)
    species = tuple(
        SpeciesConfig(**{**s, "drift_velocity": tuple(s["drift_velocity"])})
        for s in d.pop("species", [])
    )
    if species:
        d["species"] = species
    return XpicConfig(**d)


@dataclass
class ExperimentSpec:
    """Declarative description of one experiment run.

    ``preset`` names a machine preset (see :data:`MACHINE_PRESETS`);
    ``machine_overrides`` tweaks its builder (e.g. ``cluster_nodes=2``).
    ``app`` selects the driver ('xpic' or 'seismic'); ``mode`` is the
    placement: Cluster / Booster / C+B for xPic, Cluster / Booster /
    Split for seismic.  ``config`` optionally replaces the default
    Table II :class:`XpicConfig` (its ``steps`` then wins over
    ``steps``).  ``trace`` records per-phase intervals into a
    :class:`~repro.sim.Tracer` (slightly slower, much more visible).
    """

    preset: str = "deep-er"
    app: str = "xpic"
    mode: str = "C+B"
    steps: int = 100
    nodes_per_solver: int = 1
    overlap: bool = True
    swap_placement: bool = False
    load_balanced: bool = False
    imbalance_alpha: Optional[float] = None
    seed: int = 20180521
    trace: bool = False
    machine_overrides: Dict[str, Any] = field(default_factory=dict)
    config: Optional[XpicConfig] = None
    #: fault injection (stored as the FaultPlan dict so specs stay
    #: JSON-safe); any of these set routes the run through the
    #: resilient supervisor and adds a ``resiliency`` report section
    fault_plan: Optional[dict] = None
    mtbf_s: Optional[float] = None
    ckpt_interval_s: Optional[float] = None
    #: event-queue backend for the run ("heap" or "calendar"); ``None``
    #: defers to the ``REPRO_SIM_BACKEND`` environment variable.  An
    #: execution detail, not an experiment parameter: backends are
    #: bit-identical, so the result cache deliberately ignores it.
    sim_backend: Optional[str] = None
    #: canonical placement as a :class:`~repro.partition.Partition`
    #: (stored in dict form so specs stay JSON-safe).  Authoritative
    #: when set: the flat fields above are derived from it.  A *flat*
    #: partition collapses into those fields and resets to ``None`` so
    #: flat specs keep their historical shape (and cache keys); only
    #: hierarchical (nested) partitions are carried through.
    partition: Optional[dict] = None
    #: malleability policy (see :class:`~repro.resiliency.malleable.
    #: MalleabilityPolicy` for the keys).  With fault injection active,
    #: routes the run through the malleable supervisor, which re-tunes
    #: the partition over the surviving machine instead of the static
    #: degradation script.  Without faults the plain path runs — a
    #: zero-fault malleable spec is event-identical to today's engine.
    malleability: Optional[dict] = None

    def __post_init__(self):
        if self.preset not in MACHINE_PRESETS:
            raise ValueError(
                f"unknown preset {self.preset!r} "
                f"(available: {sorted(MACHINE_PRESETS)})"
            )
        app_obj = get_app(self.app)  # raises ValueError on unknown apps
        if self.steps < 0:
            raise ValueError("steps cannot be negative")
        if self.nodes_per_solver < 1:
            raise ValueError("need at least one node per solver")
        if self.partition is not None:
            from .partition import Partition

            part = Partition.coerce(self.partition)
            if self.app != "xpic":
                raise ValueError(
                    "partitions are only wired to the xpic app"
                )
            # the partition is authoritative over the flat fields
            self.mode = part.mode
            self.nodes_per_solver = part.nodes_per_solver
            self.overlap = part.overlap
            self.swap_placement = part.swap_placement
            self.partition = part.to_dict() if part.is_nested else None
        if isinstance(self.fault_plan, FaultPlan):
            self.fault_plan = self.fault_plan.to_dict()
        if self.fault_plan is not None:
            # validate eagerly so a bad plan fails at spec construction
            FaultPlan.from_dict(self.fault_plan)
        if self.mtbf_s is not None and self.mtbf_s <= 0:
            raise ValueError("mtbf_s must be positive")
        if self.ckpt_interval_s is not None and self.ckpt_interval_s <= 0:
            raise ValueError("ckpt_interval_s must be positive")
        if self.sim_backend is not None:
            resolve_backend(self.sim_backend)  # fail fast on unknown names
        if self.wants_resiliency and not app_obj.supports_resiliency:
            raise ValueError("fault injection is only wired to the xpic app")
        if self.malleability is not None:
            from .resiliency.malleable import MalleabilityPolicy

            if isinstance(self.malleability, MalleabilityPolicy):
                self.malleability = self.malleability.to_dict()
            # validate eagerly so a bad policy fails at construction
            self.malleability = MalleabilityPolicy.from_dict(
                self.malleability
            ).to_dict()
            if not app_obj.supports_malleability:
                raise ValueError(
                    f"app {self.app!r} does not support malleability"
                )
        if (
            self.partition is not None
            and self.wants_resiliency
            and not self.wants_malleability
        ):
            raise ValueError(
                "a hierarchical partition under fault injection needs "
                "the malleable supervisor: set malleability "
                "(e.g. {'enabled': True}) or run without faults"
            )
        # normalize early so bad modes fail at spec construction
        self.mode = app_obj.normalize_mode(self.mode)

    @property
    def wants_resiliency(self) -> bool:
        """True when this spec asks for the fault-injected run path
        (a plan with events, a streaming MTBF, or forced checkpoints).
        A zero-event plan alone does *not* count: it must produce the
        exact event stream of an uninjected run."""
        plan_has_events = bool(
            self.fault_plan and self.fault_plan.get("events")
        )
        return (
            plan_has_events
            or self.mtbf_s is not None
            or self.ckpt_interval_s is not None
        )

    @property
    def wants_malleability(self) -> bool:
        """True when this spec routes through the malleable supervisor:
        an enabled malleability policy *and* fault injection.  Without
        faults there is nothing to adapt to, so the plain (or static
        resilient) path runs and stays event-identical."""
        return bool(
            self.malleability
            and self.malleability.get("enabled", True)
            and self.wants_resiliency
        )

    # -- machine construction ---------------------------------------------
    def build_machine(self, sim: Optional[Simulator] = None) -> Machine:
        """Instantiate this spec's machine preset.

        When no pre-built simulator is supplied, one is created on this
        spec's ``sim_backend`` (falling back to the environment/default
        resolution chain).
        """
        builder = MACHINE_PRESETS[self.preset]
        if sim is None:
            sim = Simulator(backend=self.sim_backend)
        return builder(sim=sim, **self.machine_overrides)

    # -- (de)serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict form (inverse of :meth:`from_dict`)."""
        d = dataclasses.asdict(self)
        d["config"] = _config_to_dict(self.config)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        d = dict(d)
        d["config"] = _config_from_dict(d.get("config"))
        d["machine_overrides"] = dict(d.get("machine_overrides") or {})
        return cls(**d)


# -- keyword-only construction (deprecation shim) ---------------------------
# ExperimentSpec is keyword-only as of 1.3: positional construction
# still works through this shim but warns and will be removed in 2.0
# (see docs/ARCHITECTURE.md, "Experiment service & the repro.api
# facade").  The shim wraps the dataclass __init__ after the class is
# built so dataclasses.replace/pickle/asdict behave unchanged.
_SPEC_FIELD_NAMES = tuple(f.name for f in dataclasses.fields(ExperimentSpec))
_spec_dataclass_init = ExperimentSpec.__init__


def _spec_kwonly_init(self, *args, **kwargs):
    """Keyword-only ``ExperimentSpec`` constructor (positional shim)."""
    if args:
        warnings.warn(
            "positional ExperimentSpec arguments are deprecated and will "
            "be removed in repro 2.0; pass every field by keyword, e.g. "
            "ExperimentSpec(preset='deep-er', mode='C+B', steps=100)",
            DeprecationWarning,
            stacklevel=2,
        )
        if len(args) > len(_SPEC_FIELD_NAMES):
            raise TypeError(
                f"ExperimentSpec takes at most {len(_SPEC_FIELD_NAMES)} "
                f"arguments ({len(args)} given)"
            )
        for name, value in zip(_SPEC_FIELD_NAMES, args):
            if name in kwargs:
                raise TypeError(
                    f"ExperimentSpec got multiple values for {name!r}"
                )
            kwargs[name] = value
    _spec_dataclass_init(self, **kwargs)


_spec_kwonly_init.__wrapped__ = _spec_dataclass_init
ExperimentSpec.__init__ = _spec_kwonly_init


class _ResultView:
    """Attribute view over a :class:`RunReport` result dict.

    Stands in for the in-memory app result object (``RunResult`` /
    ``SeismicResult``) when a report crossed a process boundary —
    ``report.result_view.total_runtime`` works identically for serial
    and pooled runs.
    """

    __slots__ = ("_d",)

    def __init__(self, d: dict):
        self._d = d

    def __getattr__(self, name: str):
        try:
            return self._d[name]
        except KeyError:
            raise AttributeError(name) from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ResultView {self._d.get('app')}/{self._d.get('mode')}>"


@dataclass
class RunReport:
    """Structured outcome of one engine run: result + cross-layer metrics.

    JSON-stable keys; all times in **seconds**.  ``run_result`` and
    ``tracer`` hold the in-memory app objects for the session that ran
    the experiment and are not serialized.
    """

    spec: dict
    result: dict
    sim: dict
    network: dict
    mpi: dict
    phases: dict
    intervals: list = field(default_factory=list)
    #: fault-injection section (empty for non-resilient runs): faults
    #: injected, transport retries, checkpoints by level, restarts,
    #: lost work seconds, degraded-mode flag
    resiliency: dict = field(default_factory=dict)
    #: malleability section (empty unless the malleable supervisor
    #: ran): policy, initial/final partition, re-partition events,
    #: time-to-recover, post-fault throughput
    malleability: dict = field(default_factory=dict)
    schema: str = REPORT_SCHEMA
    run_result: Any = field(default=None, repr=False, compare=False)
    tracer: Any = field(default=None, repr=False, compare=False)

    # -- convenience accessors ---------------------------------------------
    @property
    def total_runtime(self) -> float:
        """Total simulated runtime of the app in seconds."""
        return self.result.get("total_runtime", 0.0)

    @property
    def fields_time(self) -> float:
        """Critical-path field-solver time (xPic runs)."""
        return self.result.get("fields_time", 0.0)

    @property
    def particles_time(self) -> float:
        """Critical-path particle-solver time (xPic runs)."""
        return self.result.get("particles_time", 0.0)

    @property
    def comm_overhead_fraction(self) -> float:
        """Inter-module communication overhead relative to total time."""
        return self.result.get("comm_overhead_fraction", 0.0)

    def comm_stats(self, name: str) -> dict:
        """Traffic of one communicator by name (empty dict if absent)."""
        return self.mpi.get("communicators", {}).get(name, {})

    @property
    def result_view(self):
        """The in-memory app result object when available (serial runs),
        else an attribute view over :attr:`result` (pooled runs)."""
        if self.run_result is not None:
            return self.run_result
        return _ResultView(self.result)

    # -- JSON round trip ----------------------------------------------------
    def to_dict(self) -> dict:
        """The serialized form: schema tag + the six metric sections."""
        return {
            "schema": self.schema,
            "spec": self.spec,
            "result": self.result,
            "sim": self.sim,
            "network": self.network,
            "mpi": self.mpi,
            "phases": self.phases,
            "intervals": self.intervals,
            "resiliency": self.resiliency,
            "malleability": self.malleability,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to JSON with stable key order."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output."""
        try:
            return cls(
                spec=d["spec"],
                result=d["result"],
                sim=d["sim"],
                network=d["network"],
                mpi=d["mpi"],
                phases=d["phases"],
                intervals=list(d.get("intervals", [])),
                resiliency=dict(d.get("resiliency") or {}),
                malleability=dict(d.get("malleability") or {}),
                schema=d.get("schema", REPORT_SCHEMA),
            )
        except KeyError as exc:
            raise ValueError(
                f"not a {REPORT_SCHEMA} document (missing key {exc})"
            ) from None

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        """Write the report as JSON."""
        Path(path).write_text(self.to_json(indent=2))

    @classmethod
    def load(cls, path) -> "RunReport":
        return cls.from_json(Path(path).read_text())

    # -- Chrome trace export -------------------------------------------------
    def to_chrome_trace(self) -> list:
        """Chrome trace-event JSON objects (chrome://tracing, Perfetto).

        Traced phase intervals become duration ('X') events, one
        process per actor; per-link byte counters are appended as
        counter ('C') events so fabric hot spots show up next to the
        timeline.  Valid (if sparser) without tracing enabled.
        """
        actors = []
        for iv in self.intervals:
            if iv["actor"] not in actors:
                actors.append(iv["actor"])
        pid = {a: i for i, a in enumerate(actors)}
        events = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid[a],
                "args": {"name": a},
            }
            for a in actors
        ]
        for iv in self.intervals:
            events.append(
                {
                    "name": iv["label"],
                    "cat": "phase",
                    "ph": "X",
                    "pid": pid[iv["actor"]],
                    "tid": 0,
                    "ts": iv["start"] * 1e6,
                    "dur": (iv["end"] - iv["start"]) * 1e6,
                }
            )
        net_pid = len(actors)
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": net_pid,
                "args": {"name": "fabric"},
            }
        )
        end_ts = self.total_runtime * 1e6
        for link_name, m in sorted(self.network.get("links", {}).items()):
            events.append(
                {
                    "name": f"bytes {link_name}",
                    "ph": "C",
                    "pid": net_pid,
                    "ts": end_ts,
                    "args": {"bytes": m["bytes"], "messages": m["messages"]},
                }
            )
        return events

    def save_chrome_trace(self, path) -> None:
        """Write the Chrome trace to a JSON file."""
        Path(path).write_text(json.dumps(self.to_chrome_trace()))


@dataclass
class SweepReport:
    """Outcome of one :meth:`Engine.run_many` sweep.

    ``reports`` preserves the order of the input specs regardless of
    worker scheduling.  ``workers`` is the worker count actually used
    (1 after a serial fallback); ``host_wall_s`` is the sweep's
    end-to-end host wall-clock.
    """

    reports: list
    workers: int = 1
    host_wall_s: float = 0.0
    schema: str = SWEEP_SCHEMA

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    @property
    def results(self) -> list:
        """The per-run result payloads, in spec order."""
        return [r.result for r in self.reports]

    def merged_metrics(self) -> dict:
        """Cross-layer totals aggregated over every run of the sweep."""
        merged = {
            "runs": len(self.reports),
            "sim_events": 0,
            "fast_wakeups": 0,
            "network_bytes": 0,
            "network_messages": 0,
            "fast_transfers": 0,
            "slow_transfers": 0,
            "sim_wall_s": 0.0,
            "sim_time_s": 0.0,
        }
        for r in self.reports:
            merged["sim_events"] += r.sim.get("events_processed", 0)
            merged["fast_wakeups"] += r.sim.get("fast_wakeups", 0)
            merged["sim_wall_s"] += r.sim.get("wall_time_s", 0.0)
            merged["sim_time_s"] += r.sim.get("sim_time_s", 0.0)
            merged["network_bytes"] += r.network.get("total_bytes", 0)
            merged["network_messages"] += r.network.get("total_messages", 0)
            merged["fast_transfers"] += r.network.get("fast_transfers", 0)
            merged["slow_transfers"] += r.network.get("slow_transfers", 0)
        return merged

    # -- JSON round trip ----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict form (schema, merged totals, per-run reports)."""
        return {
            "schema": self.schema,
            "workers": self.workers,
            "host_wall_s": self.host_wall_s,
            "merged": self.merged_metrics(),
            "runs": [r.to_dict() for r in self.reports],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize :meth:`to_dict` with stable key order."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "SweepReport":
        try:
            return cls(
                reports=[RunReport.from_dict(r) for r in d["runs"]],
                workers=d.get("workers", 1),
                host_wall_s=d.get("host_wall_s", 0.0),
                schema=d.get("schema", SWEEP_SCHEMA),
            )
        except KeyError as exc:
            raise ValueError(
                f"not a {SWEEP_SCHEMA} document (missing key {exc})"
            ) from None

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        """Write the sweep report to ``path`` as indented JSON."""
        Path(path).write_text(self.to_json(indent=2))

    @classmethod
    def load(cls, path) -> "SweepReport":
        return cls.from_json(Path(path).read_text())


def _run_spec_payload(spec_dict: dict) -> dict:
    """Pool-worker entry point: run one spec (dict form), return the
    report's dict form (both sides of the boundary are plain JSON-safe
    dicts, so the payload pickles regardless of app internals)."""
    report = Engine().run(ExperimentSpec.from_dict(spec_dict))
    return report.to_dict()


def _coerce_cache(cache):
    """Accept a :class:`~repro.cache.ResultCache`, a directory path
    (str/Path), or None."""
    if cache is None:
        return None
    from .cache import ResultCache

    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


class Engine:
    """Builds the simulated stack for a spec, runs it, reports metrics."""

    def build_machine(self, spec: ExperimentSpec) -> Machine:
        """The machine a spec describes (preset + overrides), unrun."""
        return spec.build_machine()

    def run_many(
        self, specs, workers: int = 1, chunksize: int = 1, cache=None,
        pool=None,
    ) -> SweepReport:
        """Run a sweep of independent specs, optionally in parallel.

        ``workers > 1`` fans the runs out over a
        ``concurrent.futures.ProcessPoolExecutor``; results come back in
        **spec order** regardless of completion order, and each run's
        simulation is seeded/deterministic, so the per-run
        ``RunReport.result`` payloads are bit-identical to a serial
        sweep.  A worker failure re-raises the original exception.

        ``cache`` (a :class:`~repro.cache.ResultCache` or a directory
        path) memoizes runs by content-addressed spec key.  Hits are
        resolved **in the parent process** — a cached spec never spawns
        a pool worker — and only the misses are submitted; their fresh
        reports are stored on the way out.  A cached report is
        bit-identical to the report of the run that populated it.

        Serial fallback: ``workers=1``, at most one uncached spec, or
        any spec whose dict form does not pickle (e.g. exotic
        ``machine_overrides``) runs the misses in-process; only then do
        their reports keep in-memory ``run_result``/``tracer`` handles
        (pooled reports still expose ``result_view``).

        ``pool`` (an already-running ``ProcessPoolExecutor``) reuses a
        caller-owned executor instead of spawning one per sweep — the
        experiment service shares one pool across every batch.  The
        caller owns the pool's lifecycle **and its crash recovery**: a
        ``BrokenProcessPool`` from an external pool propagates instead
        of triggering the serial-rerun fallback, so the owner can
        recycle the pool and requeue.
        """
        if workers < 1:
            raise ValueError(
                f"workers must be >= 1 (got {workers}); use workers=1 "
                "for an in-process serial sweep"
            )
        cache = _coerce_cache(cache)
        specs = list(specs)
        t0 = time.perf_counter()  # wall-clock-ok: host-side telemetry only
        reports: list = [None] * len(specs)
        if cache is not None:
            for i, spec in enumerate(specs):
                reports[i] = cache.get(spec)
        misses = [i for i, r in enumerate(reports) if r is None]
        payloads = [specs[i].to_dict() for i in misses]
        use_pool = bool(misses) and (
            pool is not None or (workers > 1 and len(misses) > 1)
        )
        if use_pool:
            import pickle

            try:
                pickle.dumps(payloads)
            except Exception:
                use_pool = False  # unpicklable spec: serial fallback
        if use_pool and pool is not None:
            # external executor: the caller owns lifecycle and crash
            # recovery, so BrokenProcessPool propagates
            dicts = list(
                pool.map(_run_spec_payload, payloads, chunksize=chunksize)
            )
            for i, d in zip(misses, dicts):
                reports[i] = RunReport.from_dict(d)
        elif use_pool:
            from concurrent.futures import ProcessPoolExecutor
            from concurrent.futures.process import BrokenProcessPool

            try:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(misses))
                ) as owned_pool:
                    dicts = list(
                        owned_pool.map(
                            _run_spec_payload, payloads, chunksize=chunksize
                        )
                    )
            except BrokenProcessPool:
                # a worker died abruptly (OOM kill, segfault, interpreter
                # crash) — not an app exception, which would re-raise
                # above.  The runs are deterministic, so redo the whole
                # sweep in-process rather than losing it.
                import warnings

                warnings.warn(
                    "worker pool broke mid-sweep; rerunning all "
                    f"{len(misses)} uncached specs serially",
                    RuntimeWarning,
                    stacklevel=2,
                )
                use_pool = False
            else:
                for i, d in zip(misses, dicts):
                    reports[i] = RunReport.from_dict(d)
        if not use_pool:
            workers = 1
            for i in misses:
                reports[i] = self.run(specs[i])
        if cache is not None:
            for i in misses:
                cache.put(specs[i], reports[i])
        return SweepReport(
            reports=reports,
            workers=min(workers, max(len(misses), 1)),
            host_wall_s=time.perf_counter() - t0,  # wall-clock-ok: host-side telemetry only
        )

    def run(self, spec: ExperimentSpec, cache=None) -> RunReport:
        """Execute one experiment end to end and return its RunReport.

        ``cache`` (a :class:`~repro.cache.ResultCache` or a directory
        path) short-circuits the run when the spec's content-addressed
        key is already stored — the memoized report comes back
        bit-identical — and stores the fresh report on a miss.
        """
        cache = _coerce_cache(cache)
        if cache is not None:
            cached = cache.get(spec)
            if cached is not None:
                return cached
        report = self._run_uncached(spec, cache=cache)
        if cache is not None:
            cache.put(spec, report)
        return report

    def _run_uncached(
        self, spec: ExperimentSpec, cache=None
    ) -> RunReport:
        """The simulate-and-measure path of :meth:`run` (no lookup)."""
        t0 = time.perf_counter()  # wall-clock-ok: host-side telemetry only
        machine = spec.build_machine()
        if spec.wants_resiliency:
            # transport-level fault tolerance rides along with injection
            runtime = MPIRuntime(
                machine,
                fault_tolerance=FaultTolerancePolicy(
                    max_retries=2, backoff_base_s=1e-4
                ),
            )
        else:
            runtime = MPIRuntime(machine)
        tracer = Tracer() if spec.trace else None
        if tracer is not None:
            machine.fabric.tracer = tracer
        hub = MetricsHub(
            sim=machine.sim,
            fabric=machine.fabric,
            runtime=runtime,
            tracer=tracer,
            cache=cache,
        )

        app_obj = get_app(spec.app)
        result_obj, result, resiliency, malleability = app_obj.runner(
            spec, machine, runtime, tracer
        )
        if malleability:
            hub.attach(malleable=malleability)

        metrics = hub.snapshot()
        metrics["sim"]["host_wall_s"] = time.perf_counter() - t0  # wall-clock-ok: host-side telemetry only
        intervals = (
            [
                {
                    "actor": iv.actor,
                    "label": iv.label,
                    "start": iv.start,
                    "end": iv.end,
                }
                for iv in tracer.intervals
            ]
            if tracer is not None
            else []
        )
        return RunReport(
            spec=spec.to_dict(),
            result=result,
            sim=metrics["sim"],
            network=metrics["network"],
            mpi=metrics["mpi"],
            phases=metrics["phases"],
            intervals=intervals,
            resiliency=resiliency,
            malleability=metrics["malleability"],
            run_result=result_obj,
            tracer=tracer,
        )
