"""The unified experiment engine: one instrumented run path.

Every consumer of the stack — CLI, claims validation, the Fig 7/8
runners, examples — describes a run as a declarative
:class:`ExperimentSpec` (machine preset, app, mode/placement, steps)
and hands it to the :class:`Engine`, which builds the machine, the MPI
runtime, and the instrumentation hub, executes the app driver, and
returns a structured :class:`RunReport` carrying the app-level result
*and* metrics from every layer (simulator, fabric links, MPI
communicators, traced phases).

This mirrors how the real DEEP-ER prototype gives one launch/measure
path (ParaStation startup + system-wide monitoring) to every
application, instead of each experiment hand-wiring its own stack.

Typical use::

    from repro.engine import Engine, ExperimentSpec

    report = Engine().run(ExperimentSpec(mode="C+B", steps=100))
    print(report.total_runtime, report.network["total_bytes"])
    report.save_chrome_trace("run.trace.json")
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from .apps.seismic import SeismicPlacement, run_seismic
from .apps.xpic import Mode, run_experiment, table2_setup
from .apps.xpic.config import SpeciesConfig, XpicConfig
from .hardware.machine import (
    Machine,
    build_deep_er_prototype,
    build_jureca_like,
)
from .instrument import MetricsHub
from .mpi import MPIRuntime
from .sim import Simulator, Tracer

__all__ = [
    "ExperimentSpec",
    "RunReport",
    "Engine",
    "MACHINE_PRESETS",
    "REPORT_SCHEMA",
    "preset_machine",
]

#: schema tag of the RunReport JSON export (bump on breaking change)
REPORT_SCHEMA = "repro.run_report/1"

#: machine presets: name -> builder taking (sim=..., **overrides)
MACHINE_PRESETS = {
    "deep-er": build_deep_er_prototype,
    "jureca": build_jureca_like,
}

_MODE_ALIASES = {
    "cluster": Mode.CLUSTER,
    "booster": Mode.BOOSTER,
    "cb": Mode.CB,
    "c+b": Mode.CB,
}


def normalize_mode(mode) -> Mode:
    """Accept a Mode, its value, or a case-insensitive alias ('cb')."""
    if isinstance(mode, Mode):
        return mode
    try:
        return Mode(mode)
    except ValueError:
        pass
    key = str(mode).strip().lower()
    if key in _MODE_ALIASES:
        return _MODE_ALIASES[key]
    raise ValueError(
        f"unknown mode {mode!r} (expected one of "
        f"{[m.value for m in Mode]} or {sorted(_MODE_ALIASES)})"
    )


def preset_machine(
    preset: str = "deep-er", sim: Optional[Simulator] = None, **overrides
) -> Machine:
    """Build a machine preset through the spec path (the one place
    machine/topology construction is wired up)."""
    return ExperimentSpec(
        preset=preset, machine_overrides=overrides
    ).build_machine(sim=sim)


def _config_to_dict(cfg: Optional[XpicConfig]) -> Optional[dict]:
    return None if cfg is None else dataclasses.asdict(cfg)


def _config_from_dict(d: Optional[dict]) -> Optional[XpicConfig]:
    if d is None:
        return None
    d = dict(d)
    species = tuple(
        SpeciesConfig(**{**s, "drift_velocity": tuple(s["drift_velocity"])})
        for s in d.pop("species", [])
    )
    if species:
        d["species"] = species
    return XpicConfig(**d)


@dataclass
class ExperimentSpec:
    """Declarative description of one experiment run.

    ``preset`` names a machine preset (see :data:`MACHINE_PRESETS`);
    ``machine_overrides`` tweaks its builder (e.g. ``cluster_nodes=2``).
    ``app`` selects the driver ('xpic' or 'seismic'); ``mode`` is the
    placement: Cluster / Booster / C+B for xPic, Cluster / Booster /
    Split for seismic.  ``config`` optionally replaces the default
    Table II :class:`XpicConfig` (its ``steps`` then wins over
    ``steps``).  ``trace`` records per-phase intervals into a
    :class:`~repro.sim.Tracer` (slightly slower, much more visible).
    """

    preset: str = "deep-er"
    app: str = "xpic"
    mode: str = "C+B"
    steps: int = 100
    nodes_per_solver: int = 1
    overlap: bool = True
    swap_placement: bool = False
    load_balanced: bool = False
    imbalance_alpha: Optional[float] = None
    seed: int = 20180521
    trace: bool = False
    machine_overrides: Dict[str, Any] = field(default_factory=dict)
    config: Optional[XpicConfig] = None

    def __post_init__(self):
        if self.preset not in MACHINE_PRESETS:
            raise ValueError(
                f"unknown preset {self.preset!r} "
                f"(available: {sorted(MACHINE_PRESETS)})"
            )
        if self.app not in ("xpic", "seismic"):
            raise ValueError(f"unknown app {self.app!r}")
        if self.steps < 0:
            raise ValueError("steps cannot be negative")
        if self.nodes_per_solver < 1:
            raise ValueError("need at least one node per solver")
        # normalize early so bad modes fail at spec construction
        if self.app == "xpic":
            self.mode = normalize_mode(self.mode).value
        else:
            self.mode = SeismicPlacement(
                str(self.mode).strip().capitalize()
            ).value

    # -- machine construction ---------------------------------------------
    def build_machine(self, sim: Optional[Simulator] = None) -> Machine:
        """Instantiate this spec's machine preset."""
        builder = MACHINE_PRESETS[self.preset]
        return builder(sim=sim, **self.machine_overrides)

    # -- (de)serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict form (inverse of :meth:`from_dict`)."""
        d = dataclasses.asdict(self)
        d["config"] = _config_to_dict(self.config)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        d = dict(d)
        d["config"] = _config_from_dict(d.get("config"))
        d["machine_overrides"] = dict(d.get("machine_overrides") or {})
        return cls(**d)


@dataclass
class RunReport:
    """Structured outcome of one engine run: result + cross-layer metrics.

    JSON-stable keys; all times in **seconds**.  ``run_result`` and
    ``tracer`` hold the in-memory app objects for the session that ran
    the experiment and are not serialized.
    """

    spec: dict
    result: dict
    sim: dict
    network: dict
    mpi: dict
    phases: dict
    intervals: list = field(default_factory=list)
    schema: str = REPORT_SCHEMA
    run_result: Any = field(default=None, repr=False, compare=False)
    tracer: Any = field(default=None, repr=False, compare=False)

    # -- convenience accessors ---------------------------------------------
    @property
    def total_runtime(self) -> float:
        """Total simulated runtime of the app in seconds."""
        return self.result.get("total_runtime", 0.0)

    @property
    def fields_time(self) -> float:
        """Critical-path field-solver time (xPic runs)."""
        return self.result.get("fields_time", 0.0)

    @property
    def particles_time(self) -> float:
        """Critical-path particle-solver time (xPic runs)."""
        return self.result.get("particles_time", 0.0)

    @property
    def comm_overhead_fraction(self) -> float:
        """Inter-module communication overhead relative to total time."""
        return self.result.get("comm_overhead_fraction", 0.0)

    def comm_stats(self, name: str) -> dict:
        """Traffic of one communicator by name (empty dict if absent)."""
        return self.mpi.get("communicators", {}).get(name, {})

    # -- JSON round trip ----------------------------------------------------
    def to_dict(self) -> dict:
        """The serialized form: schema tag + the six metric sections."""
        return {
            "schema": self.schema,
            "spec": self.spec,
            "result": self.result,
            "sim": self.sim,
            "network": self.network,
            "mpi": self.mpi,
            "phases": self.phases,
            "intervals": self.intervals,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to JSON with stable key order."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output."""
        try:
            return cls(
                spec=d["spec"],
                result=d["result"],
                sim=d["sim"],
                network=d["network"],
                mpi=d["mpi"],
                phases=d["phases"],
                intervals=list(d.get("intervals", [])),
                schema=d.get("schema", REPORT_SCHEMA),
            )
        except KeyError as exc:
            raise ValueError(
                f"not a {REPORT_SCHEMA} document (missing key {exc})"
            ) from None

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        """Write the report as JSON."""
        Path(path).write_text(self.to_json(indent=2))

    @classmethod
    def load(cls, path) -> "RunReport":
        return cls.from_json(Path(path).read_text())

    # -- Chrome trace export -------------------------------------------------
    def to_chrome_trace(self) -> list:
        """Chrome trace-event JSON objects (chrome://tracing, Perfetto).

        Traced phase intervals become duration ('X') events, one
        process per actor; per-link byte counters are appended as
        counter ('C') events so fabric hot spots show up next to the
        timeline.  Valid (if sparser) without tracing enabled.
        """
        actors = []
        for iv in self.intervals:
            if iv["actor"] not in actors:
                actors.append(iv["actor"])
        pid = {a: i for i, a in enumerate(actors)}
        events = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid[a],
                "args": {"name": a},
            }
            for a in actors
        ]
        for iv in self.intervals:
            events.append(
                {
                    "name": iv["label"],
                    "cat": "phase",
                    "ph": "X",
                    "pid": pid[iv["actor"]],
                    "tid": 0,
                    "ts": iv["start"] * 1e6,
                    "dur": (iv["end"] - iv["start"]) * 1e6,
                }
            )
        net_pid = len(actors)
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": net_pid,
                "args": {"name": "fabric"},
            }
        )
        end_ts = self.total_runtime * 1e6
        for link_name, m in sorted(self.network.get("links", {}).items()):
            events.append(
                {
                    "name": f"bytes {link_name}",
                    "ph": "C",
                    "pid": net_pid,
                    "ts": end_ts,
                    "args": {"bytes": m["bytes"], "messages": m["messages"]},
                }
            )
        return events

    def save_chrome_trace(self, path) -> None:
        """Write the Chrome trace to a JSON file."""
        Path(path).write_text(json.dumps(self.to_chrome_trace()))


class Engine:
    """Builds the simulated stack for a spec, runs it, reports metrics."""

    def build_machine(self, spec: ExperimentSpec) -> Machine:
        """The machine a spec describes (preset + overrides), unrun."""
        return spec.build_machine()

    def run(self, spec: ExperimentSpec) -> RunReport:
        """Execute one experiment end to end and return its RunReport."""
        t0 = time.perf_counter()  # wall-clock-ok: host-side telemetry only
        machine = spec.build_machine()
        runtime = MPIRuntime(machine)
        tracer = Tracer() if spec.trace else None
        if tracer is not None:
            machine.fabric.tracer = tracer
        hub = MetricsHub(
            sim=machine.sim,
            fabric=machine.fabric,
            runtime=runtime,
            tracer=tracer,
        )

        if spec.app == "xpic":
            result_obj, result = self._run_xpic(spec, machine, runtime, tracer)
        else:
            result_obj, result = self._run_seismic(spec, machine, runtime)

        metrics = hub.snapshot()
        metrics["sim"]["host_wall_s"] = time.perf_counter() - t0  # wall-clock-ok: host-side telemetry only
        intervals = (
            [
                {
                    "actor": iv.actor,
                    "label": iv.label,
                    "start": iv.start,
                    "end": iv.end,
                }
                for iv in tracer.intervals
            ]
            if tracer is not None
            else []
        )
        return RunReport(
            spec=spec.to_dict(),
            result=result,
            sim=metrics["sim"],
            network=metrics["network"],
            mpi=metrics["mpi"],
            phases=metrics["phases"],
            intervals=intervals,
            run_result=result_obj,
            tracer=tracer,
        )

    # -- app drivers --------------------------------------------------------
    def _run_xpic(self, spec, machine, runtime, tracer):
        cfg = spec.config
        if cfg is None:
            cfg = table2_setup(steps=spec.steps)
            if spec.seed != cfg.seed:
                cfg = dataclasses.replace(cfg, seed=spec.seed)
        rr = run_experiment(
            machine,
            normalize_mode(spec.mode),
            cfg,
            nodes_per_solver=spec.nodes_per_solver,
            overlap=spec.overlap,
            swap_placement=spec.swap_placement,
            tracer=tracer,
            load_balanced=spec.load_balanced,
            imbalance_alpha=spec.imbalance_alpha,
            runtime=runtime,
        )
        result = {
            "app": "xpic",
            "mode": rr.mode.value,
            "nodes_per_solver": rr.nodes_per_solver,
            "steps": rr.steps,
            "total_runtime": rr.total_runtime,
            "fields_time": rr.fields_time,
            "particles_time": rr.particles_time,
            "inter_module_comm_time": rr.inter_module_comm_time,
            "comm_overhead_fraction": rr.comm_overhead_fraction,
        }
        return rr, result

    def _run_seismic(self, spec, machine, runtime):
        sr = run_seismic(
            machine,
            SeismicPlacement(spec.mode),
            steps=spec.steps,
            nodes=spec.nodes_per_solver,
            runtime=runtime,
        )
        result = {
            "app": "seismic",
            "mode": sr.placement.value,
            "nodes_per_solver": sr.nodes,
            "steps": sr.steps,
            "total_runtime": sr.total_runtime,
            "inter_module_comm_time": sr.comm_time,
            "comm_overhead_fraction": sr.comm_fraction,
        }
        return sr, result
