"""Calibration of the xPic kernel descriptors.

The paper reports two node-level facts (section IV-C):

* the field solver runs ~6x faster on a Cluster node than on a Booster
  node (serial/latency-bound code: Haswell's fast out-of-order core);
* the particle solver runs ~1.35x faster on a Booster node (vectorized
  gather-heavy code: KNL's wide vectors + MCDRAM, discounted by poor
  gather efficiency).

This module fixes the kernel descriptors that *produce* those ratios
from the architecture model, once, and freezes them.  Everything
system-level (C+B totals, scaling, efficiencies) is emergent from the
simulator and never tuned against the paper's result figures.

Derivation of the constants
---------------------------
Field solver (sparse CG, small grid): ``parallel_fraction = 0.30``,
``vector_fraction = 0.30`` — "not highly parallel" per the paper; the
runtime is dominated by the serial term, whose node ratio is the
single-thread ratio (2.5 GHz x IPC 3.0) / (1.3 GHz x IPC 0.95) = 6.07.

Particle solver (vectorized mover + CIC deposition):
``parallel_fraction = 1.0``, ``vector_fraction = 1.0``, GATHER access.
With gather efficiencies 0.50 (Haswell) / 0.20 (KNL), vector rates are
480 vs 532 GFlop/s.  Choosing arithmetic intensity so the Haswell run
is memory-bound and the KNL run flop-bound::

    t_HSW / t_KNL = (B / 120 GB/s) / (F / 532 GF/s) = 1.35
    =>  B = 0.3045 * F   (AI = 3.28 flop/byte)

which we realize as ~3300 flop and ~1005 bytes of traffic per particle
per step (an implicit-moment mover with predictor-corrector iterations
plus moment deposition).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.node import Node
from .kernels import AccessPattern, Kernel
from .nodeperf import time_on_node

__all__ = [
    "FLOPS_PER_PARTICLE_STEP",
    "BYTES_PER_PARTICLE_STEP",
    "PARTICLE_STATE_BYTES",
    "CG_ITERS_PER_STEP",
    "FLOPS_PER_CELL_PER_CG_ITER",
    "BYTES_PER_CELL_PER_CG_ITER",
    "FIELD_PARALLEL_FRACTION",
    "FIELD_VECTOR_FRACTION",
    "FIELD_FIXED_SERIAL_FLOPS",
    "particle_kernel",
    "field_kernel",
    "solver_ratios",
]

#: Particle solver work per particle per time step (implicit mover with
#: predictor-corrector iterations, field gather, moment deposition).
FLOPS_PER_PARTICLE_STEP = 3300.0
#: Memory traffic per particle per step, fixed by the 1.35x derivation.
BYTES_PER_PARTICLE_STEP = 0.3045 * FLOPS_PER_PARTICLE_STEP  # ~1005 B

#: Resident bytes per particle (position, velocity, charge, id).
PARTICLE_STATE_BYTES = 88

#: Field solver: implicit Maxwell solve via CG each step.
CG_ITERS_PER_STEP = 30
FLOPS_PER_CELL_PER_CG_ITER = 266.0
BYTES_PER_CELL_PER_CG_ITER = 96.0
FIELD_PARALLEL_FRACTION = 0.30
FIELD_VECTOR_FRACTION = 0.30
#: Per-step fixed serial work (solver setup, boundary conditions,
#: thread-team synchronization) that does not shrink with the domain
#: decomposition — the dominant strong-scaling limiter of the field
#: solve, and relatively far more costly on the KNL's slow scalar core.
FIELD_FIXED_SERIAL_FLOPS = 1.0e6


def particle_kernel(n_particles: int, steps: int = 1) -> Kernel:
    """Kernel descriptor for moving ``n_particles`` for ``steps`` steps."""
    if n_particles < 0 or steps < 0:
        raise ValueError("counts cannot be negative")
    return Kernel(
        name="xpic.particle_solver",
        flops=FLOPS_PER_PARTICLE_STEP * n_particles * steps,
        bytes_mem=BYTES_PER_PARTICLE_STEP * n_particles * steps,
        parallel_fraction=1.0,
        vector_fraction=1.0,
        access=AccessPattern.GATHER,
        working_set_bytes=int(PARTICLE_STATE_BYTES * n_particles) or 1,
    )


def field_kernel(n_cells: int, steps: int = 1) -> Kernel:
    """Kernel descriptor for the implicit field solve on ``n_cells``."""
    if n_cells < 0 or steps < 0:
        raise ValueError("counts cannot be negative")
    work_cells = FLOPS_PER_CELL_PER_CG_ITER * n_cells * CG_ITERS_PER_STEP
    return Kernel(
        name="xpic.field_solver",
        flops=(work_cells + FIELD_FIXED_SERIAL_FLOPS) * steps,
        bytes_mem=BYTES_PER_CELL_PER_CG_ITER * n_cells * CG_ITERS_PER_STEP * steps,
        parallel_fraction=FIELD_PARALLEL_FRACTION,
        vector_fraction=FIELD_VECTOR_FRACTION,
        working_set_bytes=max(int(200 * n_cells), 1),
    )


@dataclass(frozen=True)
class SolverRatios:
    """Node-level placement ratios (the paper's two single-node facts)."""

    field_cluster_advantage: float  # t_booster / t_cluster for fields
    particle_booster_advantage: float  # t_cluster / t_booster for particles


def solver_ratios(cluster_node: Node, booster_node: Node) -> SolverRatios:
    """Evaluate the calibrated node-level ratios on a machine's nodes."""
    fk = field_kernel(4096)
    pk = particle_kernel(4096 * 2048)
    return SolverRatios(
        field_cluster_advantage=time_on_node(booster_node, fk)
        / time_on_node(cluster_node, fk),
        particle_booster_advantage=time_on_node(cluster_node, pk)
        / time_on_node(booster_node, pk),
    )
