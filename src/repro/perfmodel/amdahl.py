"""Amdahl/scaling helpers used by benches and reports."""

from __future__ import annotations

__all__ = ["amdahl_speedup", "parallel_efficiency", "speedup"]


def amdahl_speedup(parallel_fraction: float, n: int) -> float:
    """Classic Amdahl speedup on ``n`` workers."""
    if not 0.0 <= parallel_fraction <= 1.0:
        raise ValueError("parallel_fraction must be in [0, 1]")
    if n < 1:
        raise ValueError("need at least one worker")
    return 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / n)


def speedup(t1: float, tn: float) -> float:
    """Measured speedup T(1)/T(n)."""
    if t1 <= 0 or tn <= 0:
        raise ValueError("times must be positive")
    return t1 / tn


def parallel_efficiency(t1: float, tn: float, n: int) -> float:
    """Measured parallel efficiency T(1) / (n x T(n)) — the metric of
    Fig 8's lower panel."""
    if n < 1:
        raise ValueError("need at least one node")
    return speedup(t1, tn) / n
