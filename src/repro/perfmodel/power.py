"""Node power and energy-to-solution model.

The Cluster-Booster concept exists to "increas[e] the scalability and
energy efficiency of cluster systems" (section I): many-core nodes
deliver more flop/s per Watt.  This module attaches published power
envelopes to the Table I nodes and integrates energy over an
experiment's phase timeline, enabling the energy-efficiency ablation.

Power figures (node level, including memory and NIC):

* Cluster node: 2x E5-2680v3 at 120 W TDP + DDR4 + board -> ~320 W
  busy, ~110 W idle;
* Booster node: Xeon Phi 7210 at 215 W TDP + board -> ~280 W busy,
  ~95 W idle.

Flop/s-per-Watt at peak: Cluster ~3.0 GF/W, Booster ~9.5 GF/W — the
factor ~3 efficiency advantage that motivates the Booster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..hardware.node import Node, NodeKind

__all__ = ["PowerModel", "EnergyReport", "DEFAULT_POWER"]


@dataclass(frozen=True)
class NodePower:
    """Busy/idle power draw of one node type, in Watts."""

    busy_w: float
    idle_w: float

    def __post_init__(self):
        if self.idle_w < 0 or self.busy_w < self.idle_w:
            raise ValueError("need 0 <= idle <= busy power")


DEFAULT_POWER: Dict[NodeKind, NodePower] = {
    NodeKind.CLUSTER: NodePower(busy_w=320.0, idle_w=110.0),
    NodeKind.BOOSTER: NodePower(busy_w=280.0, idle_w=95.0),
    NodeKind.DAM: NodePower(busy_w=420.0, idle_w=140.0),
    NodeKind.STORAGE: NodePower(busy_w=250.0, idle_w=150.0),
    NodeKind.NAM: NodePower(busy_w=45.0, idle_w=25.0),
    NodeKind.SERVICE: NodePower(busy_w=200.0, idle_w=100.0),
}


@dataclass
class EnergyReport:
    """Energy accounting of one run."""

    energy_j: float
    duration_s: float
    node_count: int

    @property
    def mean_power_w(self) -> float:
        """Average draw over the run."""
        return self.energy_j / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def energy_kwh(self) -> float:
        """Energy in kilowatt-hours."""
        return self.energy_j / 3.6e6


class PowerModel:
    """Integrates node power over busy/idle time."""

    def __init__(self, table: Dict[NodeKind, NodePower] = None):
        self.table = dict(DEFAULT_POWER)
        if table:
            self.table.update(table)

    def node_power(self, kind: NodeKind, busy: bool) -> float:
        """Instantaneous draw of a node type, busy or idle."""
        p = self.table[kind]
        return p.busy_w if busy else p.idle_w

    def energy(self, kind: NodeKind, busy_s: float, idle_s: float = 0.0) -> float:
        """Energy in Joules for one node with the given busy/idle split."""
        if busy_s < 0 or idle_s < 0:
            raise ValueError("times cannot be negative")
        p = self.table[kind]
        return p.busy_w * busy_s + p.idle_w * idle_s

    def run_energy(
        self,
        duration_s: float,
        busy_by_kind: Dict[NodeKind, Dict[str, float]],
    ) -> EnergyReport:
        """Energy of a job: ``busy_by_kind[kind] = {node_id: busy_s}``.

        Each listed node draws busy power for its busy seconds and idle
        power for the rest of the run.
        """
        total = 0.0
        count = 0
        for kind, nodes in busy_by_kind.items():
            for _node_id, busy_s in nodes.items():
                busy = min(busy_s, duration_s)
                total += self.energy(kind, busy, duration_s - busy)
                count += 1
        return EnergyReport(energy_j=total, duration_s=duration_s, node_count=count)

    def peak_flops_per_watt(self, node: Node) -> float:
        """Architectural efficiency: peak flop/s divided by busy power."""
        return node.peak_flops / self.table[node.kind].busy_w
