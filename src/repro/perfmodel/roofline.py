"""Roofline helpers: peak envelopes and bound classification."""

from __future__ import annotations

from ..hardware.node import Node
from .kernels import Kernel
from .nodeperf import _vec_eff

__all__ = ["attainable_flops", "is_memory_bound", "ridge_intensity"]


def attainable_flops(node: Node, kernel: Kernel) -> float:
    """Roofline-attainable flop rate for a kernel on a node:
    min(vector peak x efficiency, AI x memory bandwidth)."""
    proc, mem = node.processor, node.memory
    if proc is None or mem is None:
        raise ValueError(f"{node.node_id} is not a compute node")
    peak = proc.peak_flops * _vec_eff(proc, kernel.access)
    bw = mem.bandwidth_for(kernel.working_set_bytes)
    if kernel.bytes_mem == 0:
        return peak
    return min(peak, kernel.arithmetic_intensity * bw)


def ridge_intensity(node: Node, kernel: Kernel) -> float:
    """Arithmetic intensity at the roofline ridge point (flops/byte)."""
    proc, mem = node.processor, node.memory
    peak = proc.peak_flops * _vec_eff(proc, kernel.access)
    bw = mem.bandwidth_for(kernel.working_set_bytes)
    return peak / bw


def is_memory_bound(node: Node, kernel: Kernel) -> bool:
    """True when the kernel sits left of the node's ridge point."""
    return kernel.arithmetic_intensity < ridge_intensity(node, kernel)
