"""Evaluating a kernel's runtime on a node: roofline + Amdahl.

The model::

    t_serial   = (1 - p) * flops / (freq * scalar_ipc)
    rate_vec   = cores * freq * flops_per_cycle * eff(uarch, access)
    rate_scal  = cores * freq * scalar_ipc * thread_eff
    t_flops    = p * flops * [ v / rate_vec + (1 - v) / rate_scal ]
    t_mem      = bytes / bw(working_set)
    t_total    = t_serial + max(t_flops, t_mem)

with ``p`` the parallel fraction and ``v`` the vector fraction.  The
max() expresses roofline overlap of compute and memory streams; the
serial term adds because it cannot overlap multi-core execution.

Vector efficiencies per microarchitecture are sustained fractions of
peak issue for stream vs gather/scatter access — the standard published
ranges for Haswell AVX2 and KNL AVX-512 kernels.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hardware.node import Node
from ..hardware.processor import Processor
from .kernels import AccessPattern, Kernel

__all__ = ["VECTOR_EFFICIENCY", "THREAD_EFFICIENCY", "time_on_node", "time_on_processor"]

#: Sustained fraction of peak vector throughput by access pattern.
#: Haswell's AVX2 with well-blocked code sustains a large fraction of
#: peak; its hardware gathers are microcoded but the OoO core hides
#: much of the cost.  KNL streams well from MCDRAM but its in-order-ish
#: core and high-latency gathers leave a small fraction of peak for
#: indexed access (the reason the particle solver gains only 1.35x).
VECTOR_EFFICIENCY: Dict[str, Dict[AccessPattern, float]] = {
    "Haswell": {AccessPattern.STREAM: 0.80, AccessPattern.GATHER: 0.50},
    "Knights Landing (KNL)": {AccessPattern.STREAM: 0.70, AccessPattern.GATHER: 0.20},
    "Skylake": {AccessPattern.STREAM: 0.80, AccessPattern.GATHER: 0.55},
}

#: OpenMP-style multi-thread scaling efficiency for scalar parallel code.
THREAD_EFFICIENCY: Dict[str, float] = {
    "Haswell": 0.85,
    "Knights Landing (KNL)": 0.80,
    "Skylake": 0.85,
}

_DEFAULT_VEC_EFF = {AccessPattern.STREAM: 0.70, AccessPattern.GATHER: 0.30}
_DEFAULT_THREAD_EFF = 0.80


def _vec_eff(proc: Processor, access: AccessPattern) -> float:
    return VECTOR_EFFICIENCY.get(proc.microarchitecture, _DEFAULT_VEC_EFF)[access]


def _thread_eff(proc: Processor) -> float:
    return THREAD_EFFICIENCY.get(proc.microarchitecture, _DEFAULT_THREAD_EFF)


def time_on_processor(
    proc: Processor,
    kernel: Kernel,
    mem_bandwidth_bps: float,
    threads: Optional[int] = None,
) -> float:
    """Modeled runtime of ``kernel`` on ``proc`` with the given memory bw."""
    cores = proc.cores if threads is None else max(1, min(threads, proc.cores))
    p = kernel.parallel_fraction
    v = kernel.vector_fraction

    single_thread_rate = proc.frequency_hz * proc.scalar_ipc
    t_serial = (1.0 - p) * kernel.flops / single_thread_rate

    rate_vec = (
        cores * proc.frequency_hz * proc.flops_per_cycle
        * _vec_eff(proc, kernel.access)
    )
    rate_scalar = cores * single_thread_rate * _thread_eff(proc)
    t_flops = p * kernel.flops * (v / rate_vec + (1.0 - v) / rate_scalar)
    t_mem = kernel.bytes_mem / mem_bandwidth_bps
    return t_serial + max(t_flops, t_mem)


def time_on_node(
    node: Node, kernel: Kernel, threads: Optional[int] = None
) -> float:
    """Modeled runtime of ``kernel`` on a hardware node.

    Selects the memory level by the kernel's working set (a Booster
    kernel spilling MCDRAM streams at DDR4 speed).
    """
    if node.processor is None or node.memory is None:
        raise ValueError(f"node {node.node_id} has no compute capability")
    bw = node.memory.bandwidth_for(kernel.working_set_bytes)
    return time_on_processor(node.processor, kernel, bw, threads=threads)
