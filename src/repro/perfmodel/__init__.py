"""Kernel cost model: roofline + Amdahl on the Table I node models.

Maps counted work (flops, bytes, access pattern, parallel/vector
fractions) to runtime on a node.  Calibration constants for the xPic
solvers are derived in :mod:`repro.perfmodel.calibration`.
"""

from .amdahl import amdahl_speedup, parallel_efficiency, speedup
from .calibration import (
    BYTES_PER_PARTICLE_STEP,
    CG_ITERS_PER_STEP,
    FLOPS_PER_PARTICLE_STEP,
    SolverRatios,
    field_kernel,
    particle_kernel,
    solver_ratios,
)
from .kernels import AccessPattern, Kernel
from .partition import (
    PartitionEstimate, predict_partition, predict_partition_step,
)
from .nodeperf import (
    THREAD_EFFICIENCY,
    VECTOR_EFFICIENCY,
    time_on_node,
    time_on_processor,
)
from .power import DEFAULT_POWER, EnergyReport, PowerModel
from .roofline import attainable_flops, is_memory_bound, ridge_intensity

__all__ = [
    "Kernel",
    "AccessPattern",
    "time_on_node",
    "time_on_processor",
    "VECTOR_EFFICIENCY",
    "THREAD_EFFICIENCY",
    "attainable_flops",
    "is_memory_bound",
    "ridge_intensity",
    "PowerModel",
    "EnergyReport",
    "DEFAULT_POWER",
    "amdahl_speedup",
    "parallel_efficiency",
    "speedup",
    "PartitionEstimate",
    "predict_partition",
    "predict_partition_step",
    "particle_kernel",
    "field_kernel",
    "solver_ratios",
    "SolverRatios",
    "FLOPS_PER_PARTICLE_STEP",
    "BYTES_PER_PARTICLE_STEP",
    "CG_ITERS_PER_STEP",
]
