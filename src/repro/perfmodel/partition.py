"""Analytic partition-placement predictor for Cluster-Booster runs.

Given the two kernel descriptors of a coupled application (a
latency-bound solver and a throughput-bound solver, per rank) this
module predicts the per-step — and whole-run — time of every way to
lay the pair out on a Cluster-Booster machine: both solvers on
Cluster nodes, both on Booster nodes, or split across the backbone
with or without communication/compute overlap, in either orientation.

The predictions are *seeds*, not truths: the autotuner
(:mod:`repro.autotune`) ranks the candidate partitions by these
numbers to decide which configurations are worth simulating first,
then measures the survivors through the engine and reports the
model-vs-measured error.  Nothing downstream trusts the model blindly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hardware.node import Node
from ..network.link import TOURMALET_LINK
from .kernels import Kernel
from .nodeperf import time_on_node

__all__ = ["PartitionEstimate", "predict_partition", "predict_partition_step"]


@dataclass(frozen=True)
class PartitionEstimate:
    """Predicted per-step composition of one partition layout."""

    field_s: float  #: field-solver time on its placement node
    particle_s: float  #: particle-solver time on its placement node
    exchange_s: float  #: inter-module interface transfer time
    step_s: float  #: resulting critical-path time of one step

    def total(self, steps: int) -> float:
        """Predicted whole-run time for ``steps`` time steps."""
        return self.step_s * steps


def _exchange_time(
    nbytes: int, bandwidth_bps: float, latency_s: float
) -> float:
    return latency_s + nbytes / bandwidth_bps if nbytes > 0 else 0.0


def predict_partition_step(
    cluster_node: Optional[Node],
    booster_node: Optional[Node],
    field_kernel: Kernel,
    particle_kernel: Kernel,
    *,
    exchange_nbytes: int = 0,
    overlap: bool = True,
    swap_placement: bool = False,
    exchange_bandwidth_bps: float = TOURMALET_LINK.bandwidth_bps,
    exchange_latency_s: float = 5e-6,
) -> PartitionEstimate:
    """Predict one step of a (possibly heterogeneous) solver placement.

    Pass both node models for a split (C+B style) run: the field
    kernel lands on the Cluster node and the particle kernel on the
    Booster node (inverted under ``swap_placement``), coupled by an
    ``exchange_nbytes`` interface transfer each step that hides behind
    compute when ``overlap`` is on.  Pass only one node (the other
    ``None``) for a homogeneous run: both kernels execute back-to-back
    on that node and the interface transfer is node-local (free).
    """
    if cluster_node is None and booster_node is None:
        raise ValueError("need at least one node model")
    if cluster_node is None or booster_node is None:
        node = cluster_node if cluster_node is not None else booster_node
        tf = time_on_node(node, field_kernel)
        tp = time_on_node(node, particle_kernel)
        return PartitionEstimate(
            field_s=tf, particle_s=tp, exchange_s=0.0, step_s=tf + tp
        )

    field_node, particle_node = cluster_node, booster_node
    if swap_placement:
        field_node, particle_node = particle_node, field_node
    tf = time_on_node(field_node, field_kernel)
    tp = time_on_node(particle_node, particle_kernel)
    tx = _exchange_time(
        exchange_nbytes, exchange_bandwidth_bps, exchange_latency_s
    )
    if overlap:
        # the interface exchange rides behind whichever solver is busier
        step = max(tf, tp, tx)
    else:
        step = max(tf, tp) + tx
    return PartitionEstimate(
        field_s=tf, particle_s=tp, exchange_s=tx, step_s=step
    )


def predict_partition(
    cluster_node: Optional[Node],
    booster_node: Optional[Node],
    partition,
    kernels_for,
    *,
    exchange_bandwidth_bps: float = TOURMALET_LINK.bandwidth_bps,
    exchange_latency_s: float = 5e-6,
) -> PartitionEstimate:
    """Recursively score a (possibly nested) :class:`~repro.partition.
    Partition` on a machine.

    ``kernels_for(ranks)`` supplies the per-rank workload at a given
    solver width: it returns ``(field_kernel, particle_kernel,
    exchange_nbytes)`` for a decomposition over ``ranks`` ranks, so the
    model re-derives the kernels at whatever width each level of the
    tree actually runs.

    Flat partitions reduce to :func:`predict_partition_step` exactly as
    before.  A nested homogeneous partition recurses into its arm: the
    sub-split co-schedules the two solvers on same-kind nodes, so both
    placement slots of the recursive call are the *same* node model and
    the arm's ``overlap`` knob decides whether the interface exchange
    hides behind compute.
    """
    arm = getattr(partition, "arm", None)
    if arm is None:
        field_k, particle_k, nbytes = kernels_for(partition.nodes_per_solver)
        return predict_partition_step(
            cluster_node if partition.cluster_nodes else None,
            booster_node if partition.booster_nodes else None,
            field_k,
            particle_k,
            exchange_nbytes=nbytes,
            overlap=partition.overlap,
            swap_placement=partition.swap_placement,
            exchange_bandwidth_bps=exchange_bandwidth_bps,
            exchange_latency_s=exchange_latency_s,
        )
    node = cluster_node if partition.cluster_nodes else booster_node
    if node is None:
        raise ValueError("no node model for the populated partition side")
    return predict_partition(
        node,
        node,
        arm,
        kernels_for,
        exchange_bandwidth_bps=exchange_bandwidth_bps,
        exchange_latency_s=exchange_latency_s,
    )
