"""Kernel descriptors: the unit of work the cost model evaluates.

A :class:`Kernel` describes *counted work* (flops, memory traffic) plus
the execution characteristics that determine how well a node type runs
it: how much of it parallelizes across cores (Amdahl), how much
vectorizes, and whether the vector accesses are streaming or
gather/scatter (KNL's AVX-512 gathers are far from peak, which is why
the particle mover's Booster advantage is 1.35x and not the 2.8x peak
ratio).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["AccessPattern", "Kernel"]


class AccessPattern(enum.Enum):
    """Dominant vector-memory access pattern of a kernel."""

    STREAM = "stream"  # unit-stride loads/stores
    GATHER = "gather"  # indexed gather/scatter (particle interpolation)


@dataclass(frozen=True)
class Kernel:
    """Work and character of one computational kernel.

    Attributes
    ----------
    name:
        Label for reports.
    flops:
        Total floating-point operations.
    bytes_mem:
        Total main-memory traffic in bytes.
    parallel_fraction:
        Fraction of the work that parallelizes over cores; the rest
        executes at single-thread speed (Amdahl's law).  The xPic field
        solver is "not highly parallel" (section IV-C) — low value; the
        particle solver is embarrassingly parallel — near 1.
    vector_fraction:
        Of the parallel work, the fraction executed with vector
        instructions (the rest retires at scalar IPC).
    access:
        STREAM or GATHER; selects the vector-efficiency table entry.
    working_set_bytes:
        Resident data size; selects the memory level (MCDRAM vs DDR4
        on the Booster).
    """

    name: str
    flops: float
    bytes_mem: float
    parallel_fraction: float = 1.0
    vector_fraction: float = 1.0
    access: AccessPattern = AccessPattern.STREAM
    working_set_bytes: Optional[int] = None

    def __post_init__(self):
        if self.flops < 0 or self.bytes_mem < 0:
            raise ValueError("work counts cannot be negative")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must be in [0, 1]")
        if not 0.0 <= self.vector_fraction <= 1.0:
            raise ValueError("vector_fraction must be in [0, 1]")

    def scaled(self, factor: float) -> "Kernel":
        """The same kernel with work counts scaled by ``factor``
        (domain decomposition: per-node share of a global kernel)."""
        if factor < 0:
            raise ValueError("scale factor cannot be negative")
        return replace(
            self, flops=self.flops * factor, bytes_mem=self.bytes_mem * factor
        )

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of memory traffic."""
        if self.bytes_mem == 0:
            return float("inf")
        return self.flops / self.bytes_mem
