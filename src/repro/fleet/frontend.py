"""Asyncio TCP front end of the fleet router.

Exposes a running :class:`~repro.fleet.router.FleetRouter` over a
socket speaking the length-prefixed JSON protocol
(:mod:`repro.fleet.protocol`): many concurrent clients, one
connection each, any number of requests per connection.  The event
loop runs in a dedicated thread, so the front end layers cleanly over
the router's thread-based core, and waiting on a job resolution is a
polling coroutine — thousands of in-flight submissions cost
coroutines, not blocked threads.

Operations (request ``op`` -> reply)::

    ping    -> {ok, op: "pong"}
    status  -> {ok, op: "status", metrics: <fleet metrics document>}
    submit  -> spec dict (+ priority/client/deadline_s); with
               wait=true (default) the reply carries the final result
               (status/report/error, routing info); wait=false acks
               with the job id immediately, and a later
               {op: "wait", id: N} blocks for the result.

A shard-level QueueFull maps to ``{ok: false, error: "queue_full",
retry_after_s: ...}`` so remote clients can back off exactly like
local ones.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, Optional

from ..engine import ExperimentSpec
from ..serve.queue import QueueFull
from .protocol import (
    FLEET_MSG_SCHEMA,
    FrameError,
    read_frame,
    write_frame,
)
from .router import FleetJob, FleetRouter

__all__ = ["FleetFrontEnd"]

#: how often a waiting coroutine re-checks its job's resolution
_WAIT_POLL_S = 0.005


def _job_doc(job: FleetJob) -> dict:
    return {
        "id": job.id,
        "key": job.key,
        "shard": job.shard,
        "home": job.home,
        "stolen": job.stolen,
        "coalesced": job.coalesced,
    }


def _result_doc(job: FleetJob) -> dict:
    error = job.exception(timeout=0)
    report = None if error is not None else job.result(timeout=0)
    return {
        "schema": FLEET_MSG_SCHEMA,
        "ok": True,
        "op": "result",
        "status": "failed" if error is not None else "done",
        "error": None if error is None else str(error),
        "cache_hit": job.cache_hit,
        "report": None if report is None else report.to_dict(),
        **_job_doc(job),
    }


def _error_doc(error: str, **extra) -> dict:
    return {
        "schema": FLEET_MSG_SCHEMA,
        "ok": False,
        "error": error,
        **extra,
    }


class FleetFrontEnd:
    """TCP front end over one router; binds ``host:port`` on start.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start` — the pattern tests and the CLI's quickstart use).
    """

    def __init__(
        self,
        router: FleetRouter,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.router = router
        self.host = host
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        #: fleet job id -> job, for two-phase submit/wait clients
        self._jobs: Dict[int, FleetJob] = {}

    @property
    def address(self) -> str:
        """``host:port`` once started."""
        return f"{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "FleetFrontEnd":
        """Bind and serve in a background event-loop thread."""
        if self._thread is not None and self._thread.is_alive():
            return self
        started = threading.Event()
        boot_error: list = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                self._server = loop.run_until_complete(
                    asyncio.start_server(
                        self._handle, self.host, self.port
                    )
                )
            except OSError as exc:
                boot_error.append(exc)
                started.set()
                loop.close()
                return
            self.port = self._server.sockets[0].getsockname()[1]
            started.set()
            try:
                loop.run_forever()
            finally:
                self._server.close()
                loop.run_until_complete(self._server.wait_closed())
                remaining = asyncio.all_tasks(loop)
                for task in remaining:
                    task.cancel()
                if remaining:
                    loop.run_until_complete(
                        asyncio.gather(
                            *remaining, return_exceptions=True
                        )
                    )
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-fleet-frontend", daemon=True
        )
        self._thread.start()
        started.wait(timeout=10)
        if boot_error:
            self._thread.join(timeout=5)
            raise boot_error[0]
        return self

    def stop(self) -> None:
        """Stop serving and join the event-loop thread."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._thread = None

    def __enter__(self) -> "FleetFrontEnd":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- connection handling -------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                try:
                    msg = await read_frame(reader)
                except FrameError as exc:
                    await write_frame(
                        writer, _error_doc(f"bad frame: {exc}")
                    )
                    break
                if msg is None:
                    break
                await write_frame(writer, await self._dispatch(msg))
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionError,
                OSError,
                asyncio.CancelledError,
            ):  # pragma: no cover - teardown race
                pass

    async def _wait_for(self, job: FleetJob,
                        timeout: Optional[float]) -> dict:
        waited = 0.0
        while not job.done():
            if timeout is not None and waited >= timeout:
                return _error_doc(
                    "timeout", id=job.id,
                    detail=f"job {job.id} unresolved after {timeout}s",
                )
            await asyncio.sleep(_WAIT_POLL_S)
            waited += _WAIT_POLL_S
        self._jobs.pop(job.id, None)
        return _result_doc(job)

    async def _dispatch(self, msg: dict) -> dict:
        op = msg.get("op")
        if op == "ping":
            return {"schema": FLEET_MSG_SCHEMA, "ok": True, "op": "pong"}
        if op == "status":
            return {
                "schema": FLEET_MSG_SCHEMA,
                "ok": True,
                "op": "status",
                "metrics": self.router.metrics_snapshot(),
            }
        if op == "submit":
            try:
                spec = ExperimentSpec.from_dict(msg["spec"])
            except (KeyError, TypeError, ValueError) as exc:
                return _error_doc(f"bad spec: {exc}")
            try:
                job = self.router.submit(
                    spec,
                    priority=int(msg.get("priority", 0)),
                    client=str(msg.get("client", "fleet-client")),
                    deadline_s=msg.get("deadline_s"),
                )
            except QueueFull as exc:
                return _error_doc(
                    "queue_full", retry_after_s=exc.retry_after_s
                )
            except (RuntimeError, LookupError) as exc:
                return _error_doc(str(exc))
            if not msg.get("wait", True):
                self._jobs[job.id] = job
                return {
                    "schema": FLEET_MSG_SCHEMA,
                    "ok": True,
                    "op": "submitted",
                    **_job_doc(job),
                }
            return await self._wait_for(job, msg.get("timeout_s"))
        if op == "wait":
            job = self._jobs.get(msg.get("id"))
            if job is None:
                return _error_doc(f"unknown job id {msg.get('id')!r}")
            return await self._wait_for(job, msg.get("timeout_s"))
        return _error_doc(f"unknown op {op!r}")
