"""Synchronous fleet client: sockets + decorrelated-jitter backoff.

The remote mirror of ``ExperimentService.submit_with_retry``: a
:class:`FleetClient` submits specs to a running fleet front end over
the length-prefixed JSON protocol, absorbing the two transient
failure modes a remote caller sees — connection errors (router
restarting, not yet bound) and ``queue_full`` rejections (every shard
at its admission bound) — with the same
:class:`~repro.backoff.ExponentialBackoff` policy the local client
path uses, honoring the service's ``retry_after_s`` hint as the
floor.  Everything else (bad spec, job failure) raises the typed
:class:`FleetClientError` immediately.
"""

from __future__ import annotations

import socket
import time
from typing import Optional

from ..backoff import ExponentialBackoff
from ..engine import RunReport
from .protocol import FLEET_MSG_SCHEMA, recv_frame, send_frame

__all__ = ["FleetClientError", "RemoteJob", "FleetClient"]


class FleetClientError(RuntimeError):
    """Typed client-side failure; carries the reply payload if any."""

    def __init__(self, message: str, payload: Optional[dict] = None):
        super().__init__(message)
        self.payload = payload or {}


class RemoteJob:
    """A resolved remote submission, shaped like a local job handle.

    The wire protocol resolves before replying, so a RemoteJob is
    always done: ``result()`` returns the report (or raises the
    failure) without blocking — uniform with
    :class:`~repro.fleet.router.FleetJob` for callers that treat
    either.
    """

    def __init__(self, payload: dict):
        self.payload = payload
        self.id = payload.get("id")
        self.key = payload.get("key", "")
        self.shard = payload.get("shard")
        self.cache_hit = bool(payload.get("cache_hit"))
        self.coalesced = bool(payload.get("coalesced"))
        self.stolen = bool(payload.get("stolen"))

    def done(self) -> bool:
        """Always True: a RemoteJob is born resolved."""
        return True

    def result(self, timeout: Optional[float] = None) -> RunReport:
        """The run report, or raises the job's failure."""
        error = self.exception()
        if error is not None:
            raise error
        return RunReport.from_dict(self.payload["report"])

    def exception(self, timeout: Optional[float] = None):
        """The job's failure as a FleetClientError, or None."""
        if self.payload.get("status") == "done":
            return None
        return FleetClientError(
            self.payload.get("error") or "job failed", self.payload
        )


def _parse_address(address) -> tuple:
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return str(address[0]), int(address[1])
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"fleet address {address!r} is not HOST:PORT"
        )
    return host, int(port)


class FleetClient:
    """One connection to a fleet front end (reconnects on error)."""

    def __init__(
        self,
        address,
        timeout_s: float = 60.0,
        max_attempts: int = 8,
        backoff: Optional[ExponentialBackoff] = None,
    ):
        self.host, self.port = _parse_address(address)
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        self._backoff = backoff or ExponentialBackoff(
            base_s=0.05, cap_s=2.0, decorrelated=True, seed=0
        )
        self._sock: Optional[socket.socket] = None

    # -- wire plumbing -------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
            sock.settimeout(self.timeout_s)
            self._sock = sock
        return self._sock

    def close(self) -> None:
        """Drop the connection (reopened lazily on the next call)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _roundtrip(self, msg: dict) -> dict:
        sock = self._connect()
        try:
            send_frame(sock, msg)
            reply = recv_frame(sock)
        except (OSError, ValueError):
            self.close()
            raise
        if reply is None:
            self.close()
            raise ConnectionError("fleet front end closed the connection")
        return reply

    # -- operations ----------------------------------------------------------
    def ping(self) -> bool:
        """True when the front end answers."""
        try:
            return bool(self._roundtrip({"op": "ping"}).get("ok"))
        except (OSError, ValueError):
            return False

    def status(self) -> dict:
        """The fleet's aggregated metrics document."""
        reply = self._roundtrip({"op": "status"})
        if not reply.get("ok"):
            raise FleetClientError(
                reply.get("error") or "status failed", reply
            )
        return reply["metrics"]

    def submit(
        self,
        spec,
        priority: int = 0,
        client: str = "fleet-client",
        deadline_s: Optional[float] = None,
        timeout_s: Optional[float] = None,
    ) -> RemoteJob:
        """Submit one spec and wait for its resolution.

        Retries connection failures and ``queue_full`` rejections with
        decorrelated-jitter backoff (honoring the router's
        ``retry_after_s`` hint) for up to ``max_attempts`` tries, then
        raises :class:`FleetClientError` (or the last socket error).
        """
        msg = {
            "schema": FLEET_MSG_SCHEMA,
            "op": "submit",
            "spec": spec.to_dict(),
            "priority": priority,
            "client": client,
            "wait": True,
        }
        if deadline_s is not None:
            msg["deadline_s"] = deadline_s
        if timeout_s is not None:
            msg["timeout_s"] = timeout_s
        last_error: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                reply = self._roundtrip(msg)
            except (OSError, ValueError) as exc:
                last_error = exc
                if attempt >= self.max_attempts:
                    raise
                time.sleep(self._backoff.next_delay())
                continue
            if reply.get("ok"):
                return RemoteJob(reply)
            if reply.get("error") == "queue_full":
                last_error = FleetClientError("queue_full", reply)
                if attempt >= self.max_attempts:
                    break
                floor = float(reply.get("retry_after_s") or 0.0)
                time.sleep(self._backoff.next_delay(floor_s=floor))
                continue
            raise FleetClientError(
                reply.get("error") or "submit failed", reply
            )
        raise last_error if last_error is not None else FleetClientError(
            "submit failed"
        )
