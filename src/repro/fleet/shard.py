"""Shard handles: the router's uniform view of one ExperimentService.

A shard is one :class:`~repro.serve.ExperimentService` with its own
store root, write-ahead journal, and heartbeat file under a private
directory.  The router talks to shards through a small handle
interface — submit / poll / depth / alive / restart — with two
implementations:

* :class:`LocalShard` embeds the service in-process (threads): no
  spawn cost, exact depth reads, the mode the throughput demo and
  most tests use.
* :class:`ProcessShard` spawns ``repro serve --jobdir <dir>`` and
  speaks the filejob directory protocol to it: real process isolation,
  liveness judged from the PR 8 heartbeat file, and SIGKILL-able for
  chaos tests.  Its submission handles are request ids, which survive
  a shard restart — the replacement server's journal recovery rewrites
  the result files, so the router just keeps polling.

Either way the shard directory layout is the ``repro serve`` one
(``queue/``, ``results/``, ``journal.jsonl``, ``heartbeat.json``,
``store/``), so ``repro serve --status`` works on a fleet shard
unchanged.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional, Tuple

from ..cache import ResultCache
from ..engine import RunReport
from ..serve import ExperimentService, read_heartbeat
from ..serve.filejob import submit_job

__all__ = ["ShardHandle", "LocalShard", "ProcessShard"]


class ShardHandle:
    """Common state + the store-sync helpers both shard kinds share."""

    #: whether submission handles survive a shard restart (process
    #: shards poll result files that journal recovery regenerates;
    #: local shards hand out in-memory jobs that die with the service)
    persistent_handles = False

    def __init__(self, name: str, root):
        self.name = name
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.restarts = 0

    @property
    def store_root(self) -> Path:
        """This shard's private result-store directory."""
        return self.root / "store"

    @property
    def heartbeat_path(self) -> Path:
        """The shard service's liveness heartbeat file."""
        return self.root / "heartbeat.json"

    @property
    def journal_path(self) -> Path:
        """The shard service's write-ahead job journal."""
        return self.root / "journal.jsonl"

    # -- store sync (bounded work stealing) ----------------------------------
    def cache_view(self) -> Optional[ResultCache]:  # pragma: no cover
        """A reader over the shard's store; None when unavailable."""
        raise NotImplementedError

    def export_key(self, key: str, out_path) -> bool:
        """Export one stored entry as a bundle file; False if absent."""
        cache = self.cache_view()
        if cache is None:
            return False
        cache.refresh()
        outcome = cache.export_bundle(out_path, where=[("key", "=", key)])
        return outcome["exported"] > 0

    def import_bundle(self, path) -> int:
        """Fold a bundle into this shard's store; imported-entry count."""
        cache = self.cache_view()
        if cache is None:
            return 0
        return int(cache.import_bundle(path)["imported"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} at {str(self.root)!r}>"


class LocalShard(ShardHandle):
    """One in-process ExperimentService under the shard directory."""

    kind = "local"

    def __init__(
        self,
        name: str,
        root,
        engine=None,
        workers: int = 1,
        max_queue: int = 256,
        heartbeat_interval_s: float = 0.25,
        **service_kwargs,
    ):
        super().__init__(name, root)
        self._engine = engine
        self._kwargs = dict(service_kwargs)
        self._kwargs.setdefault("workers", workers)
        self._kwargs.setdefault("max_queue", max_queue)
        self._hb_interval_s = heartbeat_interval_s
        self.service: Optional[ExperimentService] = None
        self._failed = False

    def start(self) -> "LocalShard":
        """Build (or rebuild) the service over the shard's journal and
        store; journal recovery replays any unresolved work."""
        self._failed = False
        self.service = ExperimentService(
            engine=self._engine,
            cache=ResultCache(self.store_root),
            journal=self.journal_path,
            heartbeat=self.heartbeat_path,
            heartbeat_interval_s=self._hb_interval_s,
            **self._kwargs,
        )
        return self

    def submit(self, spec, priority=0, client="fleet", deadline_s=None):
        """Submit to the embedded service; returns its in-memory Job."""
        return self.service.submit(
            spec, priority=priority, client=client, deadline_s=deadline_s
        )

    def poll(self, handle) -> Optional[Tuple[str, object]]:
        """Resolution of one submitted job, or None while pending."""
        if not handle.done():
            return None
        error = handle.exception(timeout=0)
        if error is not None:
            return ("failed", error, {})
        return (
            "done",
            handle.result(timeout=0),
            {"cache_hit": handle.cache_hit},
        )

    def depth(self) -> int:
        """Exact pending-queue depth of the embedded service."""
        return 0 if self.service is None else self.service.queue_depth

    def alive(self, stale_after_s: float = 5.0) -> bool:
        """Started and not crash-failed (in-process: no staleness)."""
        if self._failed or self.service is None:
            return False
        return self.service.started

    def metrics(self) -> Optional[dict]:
        """The embedded service's metrics snapshot; None when down."""
        if self.service is None:
            return None
        return self.service.metrics_snapshot()

    def cache_view(self) -> Optional[ResultCache]:
        """The embedded service's live cache; None when down."""
        return None if self.service is None else self.service.cache

    def restart(self) -> None:
        """Rebuild the service; journal recovery replays open work."""
        self.restarts += 1
        self.start()

    def fail(self) -> None:
        """Test hook: take the shard down as a supervisor would see a
        crash — liveness drops and its pending jobs never resolve
        through the old handles (the router must detach and reroute)."""
        self._failed = True
        service, self.service = self.service, None
        if service is not None:
            service.shutdown(drain=False)

    def stop(self, drain: bool = True) -> None:
        """Shut the embedded service down (optionally draining)."""
        if self.service is not None:
            self.service.shutdown(drain=drain)
            self.service = None


class ProcessShard(ShardHandle):
    """One ``repro serve`` subprocess over the shard directory."""

    kind = "process"
    persistent_handles = True

    def __init__(
        self,
        name: str,
        root,
        workers: int = 1,
        max_queue: int = 256,
        poll_s: float = 0.05,
        startup_grace_s: float = 30.0,
        extra_args=(),
        env: Optional[dict] = None,
    ):
        super().__init__(name, root)
        self.workers = workers
        self.max_queue = max_queue
        self.poll_s = poll_s
        self.startup_grace_s = startup_grace_s
        self.extra_args = list(extra_args)
        self._env = env
        self.proc: Optional[subprocess.Popen] = None
        self._started_at: Optional[float] = None
        self._outstanding = 0
        self._cache: Optional[ResultCache] = None

    def _spawn_env(self) -> dict:
        env = dict(self._env if self._env is not None else os.environ)
        # make the running repro package importable in the child even
        # from a source checkout (no install step required)
        pkg_root = Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = os.pathsep.join(
            p
            for p in [str(pkg_root), env.get("PYTHONPATH", "")]
            if p
        )
        return env

    def start(self) -> "ProcessShard":
        """Spawn ``repro serve`` over the shard directory."""
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--jobdir",
            str(self.root),
            "--cache",
            str(self.store_root),
            "--workers",
            str(self.workers),
            "--max-queue",
            str(self.max_queue),
            "--poll",
            str(self.poll_s),
            "--quiet",
            *self.extra_args,
        ]
        self.proc = subprocess.Popen(
            cmd,
            env=self._spawn_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        self._started_at = time.monotonic()  # wall-clock-ok: host-side liveness bookkeeping
        return self

    def submit(self, spec, priority=0, client="fleet", deadline_s=None):
        """Drop a request file into the jobdir; returns the request id
        (a restart-stable handle — see ``persistent_handles``)."""
        request_id = submit_job(
            self.root,
            spec,
            priority=priority,
            client=client,
            deadline_s=deadline_s,
        )
        self._outstanding += 1
        return request_id

    def poll(self, handle) -> Optional[Tuple[str, object]]:
        """Check for the request's result file (handle = request id)."""
        path = self.root / "results" / f"{handle}.json"
        try:
            import json

            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None  # absent or mid-write
        self._outstanding = max(0, self._outstanding - 1)
        if payload.get("status") == "done" and payload.get("report"):
            return (
                "done",
                RunReport.from_dict(payload["report"]),
                {"cache_hit": bool(payload.get("cache_hit"))},
            )
        return (
            "failed",
            RuntimeError(payload.get("error") or "job failed"),
            {},
        )

    def depth(self) -> int:
        """Approximate backlog: requests submitted but not yet resolved
        (exact queue depth lives in the shard process)."""
        return self._outstanding

    def alive(self, stale_after_s: float = 5.0) -> bool:
        """Process up and heartbeat fresh (within ``stale_after_s``)."""
        if self.proc is None or self.proc.poll() is not None:
            return False
        beat = read_heartbeat(self.heartbeat_path)
        if beat is None or beat.get("pid") != self.proc.pid:
            # no heartbeat from *this* incarnation yet: alive during
            # the startup grace window, dead (hung) after it
            started = self._started_at or 0.0
            return (time.monotonic() - started) < self.startup_grace_s  # wall-clock-ok: host-side liveness bookkeeping
        if beat.get("status") == "stopped":
            return False
        return beat["age_s"] <= stale_after_s

    def metrics(self) -> Optional[dict]:
        """The server's last flushed metrics.json; None if unreadable."""
        try:
            import json

            return json.loads((self.root / "metrics.json").read_text())
        except (OSError, ValueError):
            return None

    def cache_view(self) -> Optional[ResultCache]:
        """A read/write handle on the shard's store directory."""
        if self._cache is None:
            self._cache = ResultCache(self.store_root)
        return self._cache

    def restart(self) -> None:
        """Replace the process; journal recovery in the new server
        replays unresolved requests and rewrites their result files."""
        self.restarts += 1
        self.kill(wait=True)
        self._cache = None
        self.start()

    def kill(self, wait: bool = False) -> None:
        """SIGKILL the shard process (chaos hook)."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            if wait:
                self.proc.wait(timeout=10)

    def stop(self, drain: bool = True) -> None:
        """SIGTERM the server (it drains and stops); SIGKILL fallback."""
        if self.proc is None:
            return
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.proc.kill()
                self.proc.wait(timeout=10)
