"""Length-prefixed JSON framing for the fleet router socket protocol.

The fleet front end speaks the simplest self-delimiting wire format
that survives partial reads: each message is a 4-byte big-endian
length followed by that many bytes of compact JSON.  The same framing
functions serve both sides — blocking sockets for the synchronous
:class:`~repro.fleet.client.FleetClient`, asyncio streams for the
router's front end — so a frame written by either is readable by the
other by construction.

This wire protocol *coexists* with the filejob directory protocol
(:mod:`repro.serve.filejob`): the router speaks sockets to clients on
the front and, for subprocess shards, the directory protocol on the
back.  Messages are dicts with an ``op`` field; replies carry ``ok``
plus either the result payload or a typed ``error``.  A document
larger than :data:`MAX_FRAME_BYTES` (or a torn frame) raises the
typed :class:`FrameError` instead of desynchronizing the stream.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Optional

__all__ = [
    "FLEET_MSG_SCHEMA",
    "MAX_FRAME_BYTES",
    "FrameError",
    "encode_frame",
    "decode_payload",
    "send_frame",
    "recv_frame",
    "read_frame",
    "write_frame",
]

#: schema tag carried by every fleet protocol message
FLEET_MSG_SCHEMA = "repro.fleet_msg/1"

#: hard bound on one frame's JSON payload (a full RunReport is ~10 KiB;
#: 16 MiB leaves room for traced reports without letting a corrupt
#: length prefix allocate unbounded memory)
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


class FrameError(ValueError):
    """Typed framing failure: torn frame, oversize length, bad JSON."""


def encode_frame(doc: dict) -> bytes:
    """One message as wire bytes: 4-byte length + compact JSON."""
    raw = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    if len(raw) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload of {len(raw)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    return _HEADER.pack(len(raw)) + raw


def decode_payload(raw: bytes) -> dict:
    """Parse one frame's payload bytes into the message dict."""
    try:
        doc = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise FrameError("frame payload must be a JSON object")
    return doc


def _check_length(length: int) -> int:
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    return length


# -- blocking socket side ----------------------------------------------------
def _recv_exact(sock, n: int, mid_frame: bool) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary.

    EOF *inside* a frame (``mid_frame`` or after a partial read) is a
    torn frame and raises :class:`FrameError`.
    """
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if not mid_frame and got == 0:
                return None
            raise FrameError(
                f"connection closed mid-frame ({got}/{n} bytes read)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def send_frame(sock, doc: dict) -> None:
    """Write one message to a blocking socket."""
    sock.sendall(encode_frame(doc))


def recv_frame(sock) -> Optional[dict]:
    """Read one message from a blocking socket; None on clean EOF."""
    header = _recv_exact(sock, _HEADER.size, mid_frame=False)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    return decode_payload(
        _recv_exact(sock, _check_length(length), mid_frame=True)
    )


# -- asyncio side ------------------------------------------------------------
async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one message from an asyncio stream; None on clean EOF."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError(
            f"connection closed mid-header ({len(exc.partial)}/"
            f"{_HEADER.size} bytes read)"
        ) from None
    (length,) = _HEADER.unpack(header)
    try:
        raw = await reader.readexactly(_check_length(length))
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} "
            "bytes read)"
        ) from None
    return decode_payload(raw)


async def write_frame(writer: asyncio.StreamWriter, doc: dict) -> None:
    """Write one message to an asyncio stream and drain."""
    writer.write(encode_frame(doc))
    await writer.drain()
