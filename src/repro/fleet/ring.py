"""Consistent hash ring: content-addressed cache keys -> shard names.

The fleet router must send every submission of the same spec to the
same shard, or coalescing and the tiered store stop deduplicating
fleet-wide.  A consistent hash ring gives that stickiness *and*
minimal disruption: each shard owns many pseudo-random arcs of the
64-bit hash circle (``replicas`` virtual nodes per shard), a key
routes to the owner of the first point clockwise of its own hash, and
removing a shard reassigns only that shard's arcs — every other key
keeps its home, so the surviving shards' caches stay warm.

Hashing uses BLAKE2b (stdlib, keyless) rather than ``hash()`` so the
ring layout is identical across processes and Python invocations
regardless of ``PYTHONHASHSEED`` — the router, a status client, and a
test harness all agree on which shard owns which key.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List

__all__ = ["HashRing"]

#: size of the hash circle (64-bit points)
_SPACE = 2 ** 64


class HashRing:
    """Consistent hashing with virtual nodes.

    ``replicas`` is the virtual-node count per shard: more replicas
    smooth the load split (the arc-share variance shrinks roughly with
    ``1/sqrt(replicas)``) at the cost of a longer sorted point list.
    64 keeps the max/min share ratio under ~1.5 for small fleets.
    """

    def __init__(self, shards: Iterable[str] = (), replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._shards: set = set()
        #: sorted [(point, shard)] — the ring itself
        self._points: List[tuple] = []
        for shard in shards:
            self.add(shard)

    @staticmethod
    def _hash(label: str) -> int:
        digest = hashlib.blake2b(
            label.encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    # -- membership ----------------------------------------------------------
    def add(self, shard: str) -> None:
        """Add one shard's virtual nodes (idempotent)."""
        if shard in self._shards:
            return
        self._shards.add(shard)
        for rep in range(self.replicas):
            bisect.insort(
                self._points, (self._hash(f"{shard}#{rep}"), shard)
            )

    def remove(self, shard: str) -> None:
        """Remove one shard's virtual nodes; its arcs fall to the
        clockwise successors (every other key keeps its home)."""
        if shard not in self._shards:
            return
        self._shards.discard(shard)
        self._points = [(p, s) for p, s in self._points if s != shard]

    @property
    def shards(self) -> List[str]:
        """Current member shard names, sorted."""
        return sorted(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    def __len__(self) -> int:
        return len(self._shards)

    # -- routing -------------------------------------------------------------
    def route(self, key: str) -> str:
        """The shard owning ``key`` (first ring point clockwise)."""
        if not self._points:
            raise LookupError("hash ring is empty (no live shards)")
        point = self._hash(key)
        i = bisect.bisect_right(self._points, (point, "")) % len(
            self._points
        )
        return self._points[i][1]

    def preference(self, key: str, n: int = None) -> List[str]:
        """Distinct shards in ring order starting at ``key``'s owner —
        the failover order when the owner is at capacity or lost."""
        if not self._points:
            return []
        start = bisect.bisect_right(self._points, (self._hash(key), ""))
        seen: set = set()
        order: List[str] = []
        for k in range(len(self._points)):
            shard = self._points[(start + k) % len(self._points)][1]
            if shard not in seen:
                seen.add(shard)
                order.append(shard)
                if n is not None and len(order) >= n:
                    break
        return order

    def shares(self) -> Dict[str, float]:
        """Exact fraction of the hash space each shard owns (arcs
        summed) — the expected load split under uniform keys."""
        if not self._points:
            return {}
        if len(self._points) == 1:
            return {self._points[0][1]: 1.0}
        out = {shard: 0 for shard in self._shards}
        pts = self._points
        for i, (point, _shard) in enumerate(pts):
            nxt_point, nxt_shard = pts[(i + 1) % len(pts)]
            out[nxt_shard] += (nxt_point - point) % _SPACE
        return {shard: arc / _SPACE for shard, arc in sorted(out.items())}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<HashRing {len(self._shards)} shard(s) x "
            f"{self.replicas} replicas>"
        )
