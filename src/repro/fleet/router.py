"""The fleet router: cache-key routing, stealing, supervision.

One :class:`FleetRouter` fronts N shards (see
:mod:`repro.fleet.shard`) and preserves the single service's
semantics fleet-wide:

* **Routing** — each submission's content-addressed cache key is
  consistent-hashed onto a shard (:class:`~repro.fleet.ring.HashRing`),
  so every submission of one spec lands on the same shard and the
  shard's coalescing + tiered store deduplicate exactly as before.
* **Stickiness** — while a key has submissions in flight, later
  duplicates follow it to the same shard even if stealing moved it off
  its ring home; fleet-wide, a spec executes at most once per store
  lifetime, never once per shard.
* **Bounded work stealing** — when a tenant's keys skew onto one shard
  (its backlog at least ``steal_threshold`` deep *and* ``steal_margin``
  deeper than the lightest shard's), fresh keys overflow to the
  lightest shard; the stolen result is bundle-synced back into the
  home shard's store afterwards so future submissions (which route
  home) still cache-hit.  Both bounds must hold, so stealing can
  neither thrash under light load nor invert the imbalance.
* **Supervision** — a monitor thread judges shard liveness (process
  heartbeat files / scheduler liveness), restarts dead shards up to
  ``restart_limit`` times (journal recovery replays their unresolved
  work), and past the limit removes the shard from the ring: its arcs
  fall to the survivors and its outstanding jobs are rerouted — no
  accepted job is lost with the shard.

The router itself holds every accepted spec in memory as a
:class:`FleetJob` until resolution, which is what makes rerouting
possible without any cross-shard replication.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, List, Optional

from ..serve.queue import QueueFull
from ..store.keys import cache_key
from .metrics import FLEET_METRICS_SCHEMA, merge_service_snapshots
from .ring import HashRing

__all__ = ["FleetJob", "FleetRouter"]

_JOB_IDS = itertools.count(1)


class FleetJob:
    """Router-level future for one accepted submission.

    Unlike a shard job, a FleetJob can outlive its shard: on shard
    death the router detaches it (``inner = None``) and redispatches
    the spec elsewhere, so ``result()`` callers never observe the
    infrastructure failure — only the job's real outcome.
    """

    def __init__(self, spec, key, priority=0, client="fleet",
                 deadline_s=None):
        self.id = next(_JOB_IDS)
        self.spec = spec
        self.key = key
        self.priority = priority
        self.client = client
        self.deadline_s = deadline_s
        #: ring-home shard name (where the key's store entry belongs)
        self.home: Optional[str] = None
        #: shard currently executing (== home unless stolen/rerouted)
        self.shard: Optional[str] = None
        #: shard-level handle (service Job / request id); None while
        #: detached awaiting reroute
        self.inner = None
        self.stolen = False
        self.coalesced = False
        self.cache_hit = False
        self.reroutes = 0
        self._event = threading.Event()
        self._report = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        """True once the job has a report or a failure."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        """Block until resolved; the RunReport, or raises the failure."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"fleet job {self.id} not resolved within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._report

    def exception(self, timeout: Optional[float] = None):
        """Block until resolved; the failure exception, or None."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"fleet job {self.id} not resolved within {timeout}s"
            )
        return self._error

    def _resolve(self, report) -> None:
        self._report = report
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done() else "pending"
        return (
            f"<FleetJob {self.id} {state} shard={self.shard!r} "
            f"key={self.key[:8]}>"
        )


class FleetRouter:
    """Route submissions across shards; supervise; aggregate metrics.

    ``shards`` are constructed (but not necessarily started)
    :class:`~repro.fleet.shard.ShardHandle` instances with unique
    names.  ``start()`` boots every shard plus the collector and
    monitor threads; ``submit()`` is then thread-safe from any number
    of clients.
    """

    def __init__(
        self,
        shards,
        replicas: int = 64,
        steal_threshold: Optional[int] = 8,
        steal_margin: int = 4,
        restart_limit: int = 1,
        stale_after_s: float = 5.0,
        monitor_interval_s: float = 0.25,
        collect_interval_s: float = 0.004,
    ):
        shards = list(shards)
        if not shards:
            raise ValueError("a fleet needs at least one shard")
        names = [s.name for s in shards]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names in {names}")
        self._shards: Dict[str, object] = {s.name: s for s in shards}
        self._ring = HashRing(names, replicas=replicas)
        self.steal_threshold = steal_threshold
        self.steal_margin = max(1, int(steal_margin))
        self.restart_limit = restart_limit
        self.stale_after_s = stale_after_s
        self._monitor_interval_s = monitor_interval_s
        self._collect_interval_s = collect_interval_s
        self._lock = threading.Lock()
        #: key -> owning shard name while any submission is in flight
        self._inflight: Dict[str, str] = {}
        self._inflight_count: Dict[str, int] = {}
        #: FleetJob.id -> FleetJob, until resolution
        self._outstanding: Dict[int, FleetJob] = {}
        #: shards removed from the ring for good
        self._lost: set = set()
        self._counters = {
            "routed": 0,
            "sticky_routed": 0,
            "stolen": 0,
            "synced": 0,
            "rejected_full": 0,
            "shard_deaths": 0,
            "restarts": 0,
            "rebalanced": 0,
            "rerouted_jobs": 0,
        }
        self._stopping = False
        self._stop = threading.Event()
        self._collector: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "FleetRouter":
        """Start every unstarted shard and the router threads."""
        for shard in self._shards.values():
            started = (
                getattr(shard, "service", None) is not None
                or getattr(shard, "proc", None) is not None
            )
            if not started:
                shard.start()
        if self._collector is None or not self._collector.is_alive():
            self._collector = threading.Thread(
                target=self._collector_loop,
                name="repro-fleet-collector",
                daemon=True,
            )
            self._collector.start()
        if self._monitor is None or not self._monitor.is_alive():
            self._monitor = threading.Thread(
                target=self._monitor_loop,
                name="repro-fleet-monitor",
                daemon=True,
            )
            self._monitor.start()
        return self

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every accepted job is resolved (and stolen
        results synced home); False on timeout."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout  # wall-clock-ok: host-side draining only
        )
        while True:
            with self._lock:
                if not self._outstanding:
                    return True
            if deadline is not None and time.monotonic() >= deadline:  # wall-clock-ok: host-side draining only
                return False
            time.sleep(0.005)

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop routing; optionally finish accepted work first; stop
        the router threads and every live shard."""
        if drain:
            self.drain(timeout=timeout)
        with self._lock:
            self._stopping = True
            pending = list(self._outstanding.values())
            self._outstanding.clear()
            self._inflight.clear()
            self._inflight_count.clear()
        self._stop.set()
        for thread in (self._collector, self._monitor):
            if thread is not None:
                thread.join(timeout=5.0)
        for job in pending:
            job._fail(
                RuntimeError("fleet router shut down before the job ran")
            )
        for name, shard in self._shards.items():
            if name in self._lost:
                continue
            try:
                shard.stop(drain=False)
            except TypeError:
                shard.stop()

    def __enter__(self) -> "FleetRouter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    # -- submission ----------------------------------------------------------
    def submit(self, spec, priority: int = 0, client: str = "fleet",
               deadline_s: Optional[float] = None) -> FleetJob:
        """Route one spec to its shard; returns the fleet job handle.

        Raises :class:`~repro.serve.queue.QueueFull` when the target
        shard rejects (clients retry with backoff, exactly as against
        a single service), and propagates the shard's typed
        ``PoisonJobError`` for quarantined specs on local shards.
        """
        key = cache_key(spec)
        job = FleetJob(
            spec, key, priority=priority, client=client,
            deadline_s=deadline_s,
        )
        with self._lock:
            if self._stopping:
                raise RuntimeError("fleet router has been shut down")
            self._dispatch_locked(job)
        return job

    def _live_names(self) -> List[str]:
        return [n for n in self._shards if n not in self._lost]

    def _dispatch_locked(self, job: FleetJob) -> None:
        """Pick a shard (sticky > steal > ring) and hand the job over.

        Caller holds the lock.  Raises the shard's admission error
        without registering the job.
        """
        job.home = self._ring.route(job.key)
        sticky = self._inflight.get(job.key)
        if sticky is not None and sticky not in self._lost:
            target = sticky
            job.coalesced = True
            self._counters["sticky_routed"] += 1
        else:
            target = job.home
            if self.steal_threshold is not None and len(self._shards) > 1:
                home_shard = self._shards[target]
                home_depth = home_shard.depth()
                if home_depth >= self.steal_threshold:
                    lightest = min(
                        (
                            self._shards[n]
                            for n in self._live_names()
                            if n != target
                        ),
                        key=lambda s: s.depth(),
                        default=None,
                    )
                    if (
                        lightest is not None
                        and home_depth - lightest.depth()
                        >= self.steal_margin
                    ):
                        target = lightest.name
                        job.stolen = True
        shard = self._shards[target]
        try:
            inner = shard.submit(
                job.spec,
                priority=job.priority,
                client=job.client,
                deadline_s=job.deadline_s,
            )
        except QueueFull:
            self._counters["rejected_full"] += 1
            job.stolen = False
            raise
        job.shard = target
        job.inner = inner
        if job.stolen:
            self._counters["stolen"] += 1
        self._counters["routed"] += 1
        self._inflight[job.key] = target
        self._inflight_count[job.key] = (
            self._inflight_count.get(job.key, 0) + 1
        )
        self._outstanding[job.id] = job

    def _dec_inflight_locked(self, key: str) -> None:
        count = self._inflight_count.get(key, 0) - 1
        if count <= 0:
            self._inflight_count.pop(key, None)
            self._inflight.pop(key, None)
        else:
            self._inflight_count[key] = count

    # -- collector (resolution + stolen-result sync) -------------------------
    def _collector_loop(self) -> None:
        while not self._stop.wait(self._collect_interval_s):
            try:
                self._collect_once()
            except Exception:  # pragma: no cover - defensive
                pass
        self._collect_once()

    def _collect_once(self) -> None:
        with self._lock:
            pending = [
                (job, job.inner, job.shard)
                for job in self._outstanding.values()
                if job.inner is not None
            ]
        for job, inner, shard_name in pending:
            shard = self._shards.get(shard_name)
            if shard is None:
                continue
            outcome = shard.poll(inner)
            if outcome is None:
                continue
            status, payload, info = outcome
            if status == "failed" and not shard.alive(self.stale_after_s):
                # a dying shard's teardown error is not the job's
                # fate: leave it for the monitor to detach and reroute
                continue
            if status == "done" and job.stolen:
                self._sync_stolen(job)
            with self._lock:
                self._outstanding.pop(job.id, None)
                self._dec_inflight_locked(job.key)
            job.cache_hit = bool(info.get("cache_hit", False))
            if status == "done":
                job._resolve(payload)
            else:
                job._fail(payload)

    def _sync_stolen(self, job: FleetJob) -> None:
        """Copy a stolen key's stored result back to its home shard,
        so future submissions (which route home) cache-hit there."""
        thief = self._shards.get(job.shard)
        home = self._shards.get(job.home)
        if (
            thief is None
            or home is None
            or thief is home
            or job.home in self._lost
        ):
            return
        bundle = home.root / f".steal-{job.id}-{job.key[:12]}.bundle"
        try:
            if thief.export_key(job.key, bundle):
                home.import_bundle(bundle)
                with self._lock:
                    self._counters["synced"] += 1
        except OSError:  # pragma: no cover - sync is best-effort
            pass
        finally:
            bundle.unlink(missing_ok=True)

    # -- monitor (liveness, restart, rebalance) ------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(self._monitor_interval_s):
            try:
                self._monitor_once()
            except Exception:  # pragma: no cover - defensive
                pass

    def _monitor_once(self) -> None:
        for name in self._live_names():
            if self._stopping:
                return
            shard = self._shards[name]
            if shard.alive(self.stale_after_s):
                continue
            self._handle_death(name, shard)

    def _handle_death(self, name: str, shard) -> None:
        with self._lock:
            self._counters["shard_deaths"] += 1
        can_restart = (
            self.restart_limit is None
            or shard.restarts < self.restart_limit
        )
        detached: List[FleetJob] = []
        keep_handles = can_restart and shard.persistent_handles
        if not keep_handles:
            with self._lock:
                for job in self._outstanding.values():
                    if job.shard == name and job.inner is not None:
                        job.inner = None
                        job.reroutes += 1
                        detached.append(job)
                for job in detached:
                    self._dec_inflight_locked(job.key)
        if can_restart:
            try:
                shard.restart()
                with self._lock:
                    self._counters["restarts"] += 1
            except Exception:
                can_restart = False
        if not can_restart:
            with self._lock:
                self._ring.remove(name)
                self._lost.add(name)
                self._counters["rebalanced"] += 1
        if detached:
            self._reroute(detached)

    def _reroute(self, jobs: List[FleetJob]) -> None:
        """Redispatch detached jobs through normal routing, absorbing
        transient QueueFull with short sleeps (monitor-thread side)."""
        for job in jobs:
            if job.done():
                continue
            for _attempt in range(50):
                try:
                    with self._lock:
                        if self._stopping:
                            job._fail(RuntimeError(
                                "fleet router shut down during reroute"
                            ))
                            break
                        self._dispatch_locked(job)
                    with self._lock:
                        self._counters["rerouted_jobs"] += 1
                    break
                except QueueFull as exc:
                    time.sleep(
                        min(max(exc.retry_after_s, 0.01), 0.25)
                    )
                except LookupError:
                    job._fail(RuntimeError(
                        "no live shards left to run the job"
                    ))
                    break
                except Exception as exc:
                    job._fail(exc)
                    break
            else:
                job._fail(RuntimeError(
                    "could not reroute the job (shards at capacity)"
                ))

    # -- introspection -------------------------------------------------------
    @property
    def shard_names(self) -> List[str]:
        """Every configured shard name (including lost ones)."""
        return list(self._shards)

    def shard(self, name: str):
        """The handle of one shard by name."""
        return self._shards[name]

    def outstanding(self) -> int:
        """Accepted-but-unresolved job count."""
        with self._lock:
            return len(self._outstanding)

    def metrics_snapshot(self) -> dict:
        """The aggregated fleet metrics document: per-shard snapshots,
        the bucket-wise fleet merge, and the router's own counters."""
        shard_snaps = {}
        for name in self._live_names():
            shard_snaps[name] = self._shards[name].metrics() or {}
        fleet = merge_service_snapshots(list(shard_snaps.values()))
        with self._lock:
            router = dict(self._counters)
            router.update(
                {
                    "outstanding": len(self._outstanding),
                    "inflight_keys": len(self._inflight),
                    "shards_total": len(self._shards),
                    "shards_live": len(self._shards) - len(self._lost),
                    "shards_lost": sorted(self._lost),
                    "ring_shares": self._ring.shares(),
                }
            )
        return {
            "schema": FLEET_METRICS_SCHEMA,
            "shards": shard_snaps,
            "fleet": fleet,
            "router": router,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FleetRouter {len(self._shards)} shard(s), "
            f"{len(self._lost)} lost>"
        )
