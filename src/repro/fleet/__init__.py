"""repro.fleet — a sharded experiment-service fleet.

The Cluster-Booster thesis applied to the serving layer: instead of
one monolithic service process, N :class:`~repro.serve.ExperimentService`
shards — each with its own store root, write-ahead journal, and
heartbeat — behind a front-end router that consistent-hashes every
submission's content-addressed cache key onto its shard.  Coalescing,
the tiered store, and the poison quarantine keep working *fleet-wide*
with zero cross-shard duplication, because one key always lands on
one shard.

Layers (each importable on its own):

* :class:`HashRing` — consistent hashing with virtual nodes
* :mod:`~repro.fleet.protocol` — length-prefixed JSON socket framing
* :class:`LocalShard` / :class:`ProcessShard` — shard handles
* :class:`FleetRouter` — routing, bounded work stealing, shard
  supervision (restart-on-death with journal recovery, hash-ring
  rebalancing), stolen-result store sync
* :class:`FleetFrontEnd` — the asyncio TCP front end
* :class:`FleetClient` — the synchronous remote client with backoff

CLI verbs: ``repro fleet serve | submit | status``.  In-process:
``Session(fleet=router).submit(...)``.
"""

from .client import FleetClient, FleetClientError, RemoteJob
from .frontend import FleetFrontEnd
from .metrics import (
    FLEET_METRICS_SCHEMA,
    invariant_holds,
    merge_histogram_snapshots,
    merge_service_snapshots,
)
from .protocol import (
    FLEET_MSG_SCHEMA,
    MAX_FRAME_BYTES,
    FrameError,
    encode_frame,
    read_frame,
    recv_frame,
    send_frame,
    write_frame,
)
from .ring import HashRing
from .router import FleetJob, FleetRouter
from .shard import LocalShard, ProcessShard, ShardHandle

__all__ = [
    "FLEET_METRICS_SCHEMA",
    "FLEET_MSG_SCHEMA",
    "MAX_FRAME_BYTES",
    "FleetClient",
    "FleetClientError",
    "FleetFrontEnd",
    "FleetJob",
    "FleetRouter",
    "FrameError",
    "HashRing",
    "LocalShard",
    "ProcessShard",
    "RemoteJob",
    "ShardHandle",
    "encode_frame",
    "invariant_holds",
    "merge_histogram_snapshots",
    "merge_service_snapshots",
    "read_frame",
    "recv_frame",
    "send_frame",
    "write_frame",
]
