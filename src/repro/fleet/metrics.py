"""Fleet-wide metrics: merge per-shard ServiceMetrics into one view.

Capacity planning against a sharded fleet needs the same quantities
the single service exposes — admission counters, coalesce/cache-hit
rates, wait/run latency distributions — but *fleet-wide*.  Counters
are additive, so summing per-shard snapshots preserves the service's
core invariant by construction::

    submitted == accepted + coalesced + cache_hits
                 + rejected + quarantine_hits

(each shard maintains it under its own lock; a sum of balanced ledgers
is a balanced ledger).  Latency histograms are merged **bucket-wise**
from the raw counts each snapshot now carries — the merged p50/p90/p99
are exactly what one histogram over all shards' samples would report,
not an average of per-shard digests (which would be meaningless under
skewed load).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..serve.metrics import LatencyHistogram

__all__ = [
    "FLEET_METRICS_SCHEMA",
    "COUNTER_FIELDS",
    "merge_histogram_snapshots",
    "merge_service_snapshots",
    "invariant_holds",
]

#: schema tag of the aggregated fleet metrics document
FLEET_METRICS_SCHEMA = "repro.fleet_metrics/1"

#: additive ServiceMetrics fields (summed across shards); the gauges
#: queue_depth/in_flight/workers sum too (fleet totals), while the
#: per-shard peaks are reported as the fleet-wide maximum
COUNTER_FIELDS = (
    "submitted",
    "accepted",
    "rejected",
    "coalesced",
    "cache_hits",
    "executed",
    "completed",
    "failed",
    "requeued",
    "batches",
    "recovered",
    "quarantined",
    "quarantine_hits",
    "deadline_misses",
    "batch_timeouts",
    "journal_replays",
    "queue_depth",
    "in_flight",
    "workers",
)

_PEAK_FIELDS = ("peak_queue_depth", "peak_in_flight")


def merge_histogram_snapshots(snaps: Iterable[Optional[dict]]) -> dict:
    """One histogram snapshot equivalent to recording every shard's
    samples into a single histogram (bucket-wise merge)."""
    merged: Optional[LatencyHistogram] = None
    for snap in snaps:
        if not snap or not snap.get("count"):
            continue
        hist = LatencyHistogram.from_snapshot(snap)
        merged = hist if merged is None else merged.merge(hist)
    return (merged or LatencyHistogram()).snapshot()


def merge_service_snapshots(snaps: List[dict]) -> dict:
    """Fold per-shard ``metrics_snapshot()`` dicts into one fleet view.

    Counters and gauges sum; peaks take the fleet maximum; the wait and
    run histograms merge bucket-wise.  The result satisfies the same
    submitted-invariant each input did.
    """
    snaps = [s for s in snaps if s]
    merged: Dict[str, object] = {f: 0 for f in COUNTER_FIELDS}
    for snap in snaps:
        for f in COUNTER_FIELDS:
            merged[f] = int(merged[f]) + int(snap.get(f, 0) or 0)
    for f in _PEAK_FIELDS:
        merged[f] = max(
            (int(snap.get(f, 0) or 0) for snap in snaps), default=0
        )
    merged["wait"] = merge_histogram_snapshots(
        [snap.get("wait") for snap in snaps]
    )
    merged["run"] = merge_histogram_snapshots(
        [snap.get("run") for snap in snaps]
    )
    merged["shards"] = len(snaps)
    return merged


def invariant_holds(snap: dict) -> bool:
    """Whether one (shard or fleet) snapshot's admission ledger
    balances: every submission is accounted exactly once."""
    return int(snap.get("submitted", 0)) == (
        int(snap.get("accepted", 0))
        + int(snap.get("coalesced", 0))
        + int(snap.get("cache_hits", 0))
        + int(snap.get("rejected", 0))
        + int(snap.get("quarantine_hits", 0))
    )
