"""Liveness heartbeat for the experiment service.

A service that journals durably can still *hang* — a stuck batch, a
wedged pool — and a supervisor (or a human with ``repro serve
--status``) needs a cheap way to tell "alive and making progress"
from "process exists but stalled" from "dead".  The heartbeat is a
single JSON document rewritten atomically every interval with the
service pid, a wall-clock stamp, and a small counter digest; readers
judge staleness by file age and aliveness by signalling pid 0.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional

__all__ = ["HEARTBEAT_SCHEMA", "write_heartbeat", "read_heartbeat"]

#: schema tag of the heartbeat document
HEARTBEAT_SCHEMA = "repro.heartbeat/1"


def write_heartbeat(path, status: str, snapshot: Optional[dict] = None) -> None:
    """Atomically (re)write the heartbeat file.

    ``status`` is one of ``"serving"`` / ``"draining"`` / ``"stopped"``;
    ``snapshot`` is a small counter digest (queue depth, in-flight,
    completed...) folded into the document for ``--status`` display.
    """
    path = Path(path).expanduser()
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "schema": HEARTBEAT_SCHEMA,
        "pid": os.getpid(),
        "time_s": time.time(),  # wall-clock-ok: liveness stamp, compared against reader wall time
        "status": status,
    }
    if snapshot:
        doc.update(snapshot)
    tmp = path.with_suffix(f".{os.getpid()}.tmp")
    tmp.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")
    os.replace(tmp, path)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        # exists but owned by someone else — still alive
        return True
    except OSError:
        return False
    return True


def read_heartbeat(path) -> Optional[dict]:
    """Read and annotate a heartbeat file; ``None`` if absent/unreadable.

    Adds ``age_s`` (seconds since the writer's last beat) and ``alive``
    (whether the recorded pid still exists).  A missing or foreign-schema
    file reads as ``None`` — the caller reports "no heartbeat".
    """
    path = Path(path).expanduser()
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict) or doc.get("schema") != HEARTBEAT_SCHEMA:
        return None
    doc["age_s"] = max(0.0, time.time() - float(doc.get("time_s", 0.0)))  # wall-clock-ok: staleness vs real time by design
    pid = doc.get("pid")
    doc["alive"] = bool(pid) and _pid_alive(int(pid))
    return doc
