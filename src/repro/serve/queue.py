"""Jobs and the bounded fair-share priority queue of the service.

A :class:`Job` is one admitted :class:`~repro.engine.ExperimentSpec`
submission: a future-like handle clients block on (``job.result()``)
while the service schedules and executes it.  Coalesced duplicate
submissions share one Job, so a single execution fans its report out
to every waiter.

The :class:`JobQueue` is *bounded* — admission control is the
backpressure mechanism of the service; when the queue is at depth the
push raises a typed :class:`QueueFull` carrying a retry-after hint —
and *fair-share ordered*: among the highest-priority pending jobs the
client with the fewest recently-dispatched jobs goes first, so one
chatty client cannot starve the rest of the machine.
"""

from __future__ import annotations

import threading
from enum import Enum
from typing import Callable, Dict, List, Optional

__all__ = [
    "DeadlineExceeded",
    "Job",
    "JobQueue",
    "JobState",
    "PoisonJobError",
    "QueueFull",
]


class QueueFull(RuntimeError):
    """Typed admission rejection: the bounded job queue is at depth.

    Carries ``depth``/``max_depth`` and a ``retry_after_s`` hint — the
    service's estimate of when a slot frees up, derived from observed
    worker latency — so clients can back off intelligently instead of
    hammering the front door.
    """

    def __init__(self, depth: int, max_depth: int, retry_after_s: float):
        super().__init__(
            f"job queue is full ({depth}/{max_depth} queued); "
            f"retry in ~{retry_after_s:.3f}s"
        )
        self.depth = depth
        self.max_depth = max_depth
        self.retry_after_s = retry_after_s


class DeadlineExceeded(RuntimeError):
    """Typed per-job failure: the job missed its ``deadline_s`` budget.

    The deadline is a *queue-time* promise — "run me within N seconds
    of submission or don't bother" — checked by the scheduler before
    dispatch, so an expired job fails fast instead of wasting a worker
    slot on a result its client has already given up on.
    """

    def __init__(self, job_id: int, deadline_s: float, waited_s: float):
        super().__init__(
            f"job {job_id} missed its {deadline_s:.3f}s deadline "
            f"(waited {waited_s:.3f}s without being dispatched)"
        )
        self.job_id = job_id
        self.deadline_s = deadline_s
        self.waited_s = waited_s


class PoisonJobError(RuntimeError):
    """Typed quarantine failure: this spec repeatedly killed the pool.

    Subclasses RuntimeError and keeps the crash reason in its message
    so pre-quarantine callers that matched ``RuntimeError`` with
    ``"crash"`` in the text keep working.  Quarantine is journaled, so
    the same key short-circuits here on every later submission and on
    recovery — the circuit breaker that stops a poison spec from
    crash-looping the service.
    """

    def __init__(self, job_id: int, key: str, reason: str):
        super().__init__(
            f"job {job_id} quarantined as a poison job "
            f"(key {key[:12]}): {reason}"
        )
        self.job_id = job_id
        self.key = key
        self.reason = reason


class JobState(Enum):
    """Lifecycle of one job inside the service."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class Job:
    """One admitted experiment submission; a waitable result handle.

    Clients receive a Job from
    :meth:`~repro.serve.ExperimentService.submit` and call
    :meth:`result` to block until the report is ready.  Duplicate
    in-flight submissions are **coalesced** onto the same Job
    (``waiters`` counts them), so every waiter observes the single
    execution's report bit-identically.
    """

    def __init__(
        self,
        job_id: int,
        spec,
        key: str,
        priority: int = 0,
        client: str = "default",
        submitted_s: float = 0.0,
        deadline_s: Optional[float] = None,
    ):
        self.id = job_id
        self.spec = spec
        self.key = key
        self.priority = priority
        self.client = client
        self.state = JobState.QUEUED
        self.submitted_s = submitted_s
        self.deadline_s = deadline_s
        #: absolute monotonic expiry (None = no deadline)
        self.deadline_at: Optional[float] = (
            submitted_s + deadline_s if deadline_s is not None else None
        )
        self.started_s: Optional[float] = None
        self.finished_s: Optional[float] = None
        self.retries = 0
        self.waiters = 1
        self.cache_hit = False
        #: run alone in the next batch (set after a pool crash/timeout
        #: so a poison candidate cannot take innocent batchmates down)
        self.isolate = False
        #: journal sequence numbers this job resolves (primary first;
        #: recovery may coalesce several journal records onto one job)
        self.journal_seqs: List[int] = []
        self._event = threading.Event()
        self._report = None
        self._error: Optional[BaseException] = None

    # -- client side --------------------------------------------------------
    def done(self) -> bool:
        """True once the job has a report or a failure."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        """Block until resolved; the RunReport, or raises the failure.

        Raises :class:`TimeoutError` when ``timeout`` seconds pass
        without a resolution.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job {self.id} not resolved within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._report

    def exception(self, timeout: Optional[float] = None):
        """Block until resolved; the failure exception, or None."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job {self.id} not resolved within {timeout}s"
            )
        return self._error

    # -- latency accounting --------------------------------------------------
    @property
    def wait_s(self) -> float:
        """Seconds spent queued before dispatch (0.0 until dispatched)."""
        if self.started_s is None:
            return 0.0
        return max(0.0, self.started_s - self.submitted_s)

    @property
    def run_s(self) -> float:
        """Seconds spent executing (0.0 until finished)."""
        if self.started_s is None or self.finished_s is None:
            return 0.0
        return max(0.0, self.finished_s - self.started_s)

    # -- service side --------------------------------------------------------
    def _resolve(self, report, now: float) -> None:
        if self.started_s is None:
            self.started_s = now
        self.finished_s = now
        self.state = JobState.DONE
        self._report = report
        self._event.set()

    def _fail(self, error: BaseException, now: float) -> None:
        if self.started_s is None:
            self.started_s = now
        self.finished_s = now
        self.state = JobState.FAILED
        self._error = error
        self._event.set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Job {self.id} {self.state.value} client={self.client!r} "
            f"key={self.key[:8]}>"
        )


class JobQueue:
    """Bounded, priority-then-fair-share ordered pending-job queue.

    ``push`` rejects with :class:`QueueFull` once ``max_depth`` jobs
    are pending (``retry_hint()`` supplies the retry-after estimate).
    ``pop_batch`` selects jobs highest priority first; within a
    priority level the client with the fewest dispatched jobs wins,
    FIFO within a client — weighted fair queueing in its simplest
    deterministic form.
    """

    def __init__(
        self,
        max_depth: int = 64,
        retry_hint: Optional[Callable[[int], float]] = None,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self._retry_hint = retry_hint or (lambda depth: 0.0)
        self._pending: List[Job] = []
        self._dispatched: Dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def depth(self) -> int:
        """Number of jobs currently pending."""
        with self._lock:
            return len(self._pending)

    def push(self, job: Job) -> None:
        """Admit one job, or raise :class:`QueueFull` at the bound."""
        with self._lock:
            if len(self._pending) >= self.max_depth:
                depth = len(self._pending)
                raise QueueFull(
                    depth, self.max_depth, self._retry_hint(depth)
                )
            self._pending.append(job)

    def requeue(self, job: Job) -> None:
        """Re-admit an already-admitted job (after a worker crash).

        Bypasses the depth bound: the job held a slot when it was
        first admitted and rejecting it now would drop accepted work.
        """
        with self._lock:
            job.state = JobState.QUEUED
            self._pending.append(job)

    def pop_batch(self, limit: int) -> List[Job]:
        """Remove and return up to ``limit`` jobs in dispatch order.

        A job flagged ``isolate`` (prior pool crash or batch timeout)
        always runs alone: it is returned as a singleton batch, and a
        batch under construction stops before it.
        """
        batch: List[Job] = []
        with self._lock:
            while self._pending and len(batch) < limit:
                top = max(j.priority for j in self._pending)
                job = min(
                    (j for j in self._pending if j.priority == top),
                    key=lambda j: (self._dispatched.get(j.client, 0), j.id),
                )
                if job.isolate and batch:
                    break
                self._pending.remove(job)
                self._dispatched[job.client] = (
                    self._dispatched.get(job.client, 0) + 1
                )
                batch.append(job)
                if job.isolate:
                    break
        return batch

    def pop_expired(self, now: float) -> List[Job]:
        """Remove and return every pending job past its deadline."""
        with self._lock:
            expired = [
                j
                for j in self._pending
                if j.deadline_at is not None and now >= j.deadline_at
            ]
            for job in expired:
                self._pending.remove(job)
            return expired

    def drain_pending(self) -> List[Job]:
        """Remove and return every pending job (shutdown path)."""
        with self._lock:
            pending, self._pending = self._pending, []
            return pending
