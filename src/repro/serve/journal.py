"""Write-ahead job journal: the durability spine of the experiment service.

The service's in-memory queue dies with the process; the journal is
what survives.  Every job transition is appended as one JSON line to
``journal.jsonl`` *before* the transition takes effect, using the same
single-``write(2)``-on-``O_APPEND`` idiom as the result store's
columnar index (:mod:`repro.store.index`): concurrent appends
interleave whole lines, never torn ones, and a half-written final line
(SIGKILL mid-append) is dropped on replay instead of poisoning the
load.

Record lifecycle per job (``seq`` is the journal-wide job sequence
number, unique across service restarts)::

    accepted  --> dispatched --> completed
        |             |      \\-> failed
        |             \\--------> quarantined
        \\-> attached (a coalesced duplicate request rode along)

Replay folds the lines into one :class:`JournalRecord` per ``seq``
(last state wins) plus a persistent quarantine set keyed by the spec's
content-addressed cache key.  A restarted service recovers exactly the
records still in ``accepted``/``dispatched`` — the jobs the dead
process had promised but not delivered — in original sequence order,
and skips any whose key was quarantined (poison specs must not
crash-loop the replacement process).

Compaction rewrites the file with only the quarantine set (everything
else is either resolved or about to be re-accepted under a fresh
line), and only runs from management paths — recovery with nothing
unresolved, or a clean shutdown — never concurrently with appends.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "JOB_JOURNAL_SCHEMA",
    "JournalRecord",
    "JournalState",
    "JobJournal",
]

#: schema tag of the journal file (bump on breaking layout change)
JOB_JOURNAL_SCHEMA = "repro.job_journal/1"

#: the unresolved states a restarted service must recover
UNRESOLVED_STATES = ("accepted", "dispatched")

#: every state a replayed record can land in
RECORD_STATES = ("accepted", "dispatched", "completed", "failed", "quarantined")


@dataclass
class JournalRecord:
    """The folded view of one journaled job after replay."""

    seq: int
    key: str = ""
    spec: Optional[dict] = None
    priority: int = 0
    client: str = "default"
    deadline_s: Optional[float] = None
    state: str = "accepted"
    error: Optional[str] = None
    traceback: Optional[str] = None
    #: opaque per-request payloads (the file-job server stores its
    #: request ids here so recovery can re-route results), first the
    #: accepting request's, then one per coalesced attach
    metas: List[dict] = field(default_factory=list)

    @property
    def unresolved(self) -> bool:
        """True while the job still owes its client a resolution."""
        return self.state in UNRESOLVED_STATES


class JournalState:
    """Replayed journal: seq -> record, plus the quarantine set."""

    def __init__(self):
        #: insertion-ordered (= sequence-ordered) record table
        self.records: Dict[int, JournalRecord] = {}
        #: cache key -> the record that poisoned it (persists compaction)
        self.quarantined: Dict[str, JournalRecord] = {}
        #: malformed or torn lines dropped during replay
        self.dropped_lines = 0
        #: file carried a foreign schema header (contents unusable)
        self.stale = False

    @property
    def max_seq(self) -> int:
        """Highest sequence number seen (0 on an empty journal)."""
        top = max(self.records, default=0)
        qtop = max((r.seq for r in self.quarantined.values()), default=0)
        return max(top, qtop)

    def unresolved(self) -> List[JournalRecord]:
        """Records still owed to clients, in original sequence order."""
        return [r for r in self.records.values() if r.unresolved]

    def in_order(self) -> List[JournalRecord]:
        """Every record, in original sequence order."""
        return [self.records[seq] for seq in sorted(self.records)]

    def stats(self) -> dict:
        """Replay counters (for logs, status, and the microbench)."""
        by_state: Dict[str, int] = {}
        for rec in self.records.values():
            by_state[rec.state] = by_state.get(rec.state, 0) + 1
        return {
            "records": len(self.records),
            "unresolved": len(self.unresolved()),
            "quarantined": len(self.quarantined),
            "dropped_lines": self.dropped_lines,
            "stale": self.stale,
            "by_state": by_state,
        }


def _encode(rec: dict) -> bytes:
    return (
        json.dumps(rec, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


class JobJournal:
    """Append-only write-ahead log of job transitions.

    Appends are crash-atomic at line granularity (``O_APPEND``, one
    ``write(2)`` per record); :meth:`replay` is the recovery read.  The
    journal records *intent*, not results — reports live in the result
    store, which is why a recovered job whose report already reached
    the store resolves as a cache hit instead of re-running.
    """

    def __init__(self, path):
        self.path = Path(path).expanduser()
        self.path.parent.mkdir(parents=True, exist_ok=True)

    # -- append side ---------------------------------------------------------
    def _append(self, rec: dict) -> None:
        line = _encode(rec)
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            if os.fstat(fd).st_size == 0:
                os.write(
                    fd, _encode({"op": "header", "schema": JOB_JOURNAL_SCHEMA})
                )
            os.write(fd, line)
        finally:
            os.close(fd)

    def record_accepted(
        self,
        seq: int,
        key: str,
        spec: dict,
        priority: int = 0,
        client: str = "default",
        deadline_s: Optional[float] = None,
        meta: Optional[dict] = None,
    ) -> None:
        """Journal one admission — the write that makes a job durable."""
        rec = {
            "op": "accepted",
            "seq": int(seq),
            "key": key,
            "spec": spec,
            "priority": int(priority),
            "client": client,
        }
        if deadline_s is not None:
            rec["deadline_s"] = float(deadline_s)
        if meta is not None:
            rec["meta"] = meta
        self._append(rec)

    def record_attached(self, seq: int, meta: dict) -> None:
        """Journal a coalesced duplicate riding on an accepted job."""
        self._append({"op": "attached", "seq": int(seq), "meta": meta})

    def record_dispatched(self, seq: int) -> None:
        """Journal a job leaving the queue for the worker pool."""
        self._append({"op": "dispatched", "seq": int(seq)})

    def record_completed(self, seq: int) -> None:
        """Journal a delivered result (write *after* the store put)."""
        self._append({"op": "completed", "seq": int(seq)})

    def record_failed(self, seq: int, error: str) -> None:
        """Journal a typed per-job failure (app error, deadline, ...)."""
        self._append({"op": "failed", "seq": int(seq), "error": str(error)})

    def record_quarantined(
        self,
        seq: int,
        key: str,
        error: str,
        traceback: Optional[str] = None,
    ) -> None:
        """Journal a poison spec: skipped on every future recovery."""
        rec = {
            "op": "quarantined",
            "seq": int(seq),
            "key": key,
            "error": str(error),
        }
        if traceback:
            rec["traceback"] = str(traceback)
        self._append(rec)

    # -- replay side ---------------------------------------------------------
    def replay(self, trim: bool = False) -> JournalState:
        """Fold the whole journal into a :class:`JournalState`.

        Unknown ops and torn/malformed lines are counted and dropped;
        a foreign schema header marks the state ``stale`` (contents
        ignored — the caller starts a fresh journal).

        ``trim=True`` additionally truncates a torn final line (no
        trailing newline — the writer died mid-``write``) off the file,
        so the next append starts on a clean line instead of merging
        into the torn one.  Only the process that *owns* the journal
        may trim (the service does, at recovery); read-only observers
        like ``repro serve --status`` must not, or they would race a
        live writer."""
        state = JournalState()
        try:
            raw = self.path.read_bytes()
        except OSError:
            return state
        if trim and raw and not raw.endswith(b"\n"):
            keep = raw.rfind(b"\n") + 1  # 0 when no complete line at all
            fd = os.open(self.path, os.O_WRONLY)
            try:
                os.ftruncate(fd, keep)
            finally:
                os.close(fd)
        for i, line in enumerate(raw.split(b"\n")):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                op = rec["op"]
            except (ValueError, KeyError, TypeError):
                state.dropped_lines += 1
                continue
            if op == "header":
                if i == 0 and rec.get("schema") != JOB_JOURNAL_SCHEMA:
                    state.stale = True
                    state.records = {}
                    state.quarantined = {}
                    return state
                continue
            try:
                seq = int(rec["seq"])
            except (KeyError, ValueError, TypeError):
                state.dropped_lines += 1
                continue
            if op == "accepted":
                record = JournalRecord(
                    seq=seq,
                    key=str(rec.get("key", "")),
                    spec=rec.get("spec"),
                    priority=int(rec.get("priority", 0)),
                    client=str(rec.get("client", "default")),
                    deadline_s=rec.get("deadline_s"),
                )
                if rec.get("meta") is not None:
                    record.metas.append(rec["meta"])
                state.records[seq] = record
            elif op == "attached":
                record = state.records.get(seq)
                if record is None:
                    state.dropped_lines += 1
                elif rec.get("meta") is not None:
                    record.metas.append(rec["meta"])
            elif op in ("dispatched", "completed"):
                record = state.records.get(seq)
                if record is None:
                    state.dropped_lines += 1
                else:
                    record.state = (
                        "dispatched" if op == "dispatched" else "completed"
                    )
            elif op == "failed":
                record = state.records.get(seq)
                if record is None:
                    state.dropped_lines += 1
                else:
                    record.state = "failed"
                    record.error = rec.get("error")
            elif op == "quarantined":
                record = state.records.get(seq)
                if record is None:
                    # a quarantine line carried forward by compaction:
                    # reconstruct a minimal record for the set
                    record = JournalRecord(
                        seq=seq, key=str(rec.get("key", ""))
                    )
                record.state = "quarantined"
                record.error = rec.get("error")
                record.traceback = rec.get("traceback")
                if record.seq in state.records:
                    state.records[record.seq] = record
                if record.key:
                    state.quarantined[record.key] = record
            else:
                state.dropped_lines += 1
        return state

    # -- maintenance ---------------------------------------------------------
    def compact(self, state: Optional[JournalState] = None) -> None:
        """Atomically rewrite the journal keeping only the quarantine set.

        Management-path only (recovery with nothing unresolved, clean
        shutdown): must never race a concurrent appender.  Resolved
        records are dropped; quarantined keys persist so the circuit
        breaker survives restarts."""
        if state is None:
            state = self.replay()
        tmp = self.path.with_suffix(f".{os.getpid()}.tmp")
        with open(tmp, "wb") as fh:
            fh.write(_encode({"op": "header", "schema": JOB_JOURNAL_SCHEMA}))
            for key in sorted(state.quarantined):
                rec = state.quarantined[key]
                out = {
                    "op": "quarantined",
                    "seq": rec.seq,
                    "key": rec.key,
                    "error": rec.error or "",
                }
                if rec.traceback:
                    out["traceback"] = rec.traceback
                fh.write(_encode(out))
        os.replace(tmp, self.path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<JobJournal {str(self.path)!r}>"
