"""File-based job directory protocol: `repro serve` / `repro submit`.

The wire between service and clients is a plain directory — portable,
inspectable, and dependency-free::

    jobdir/
      queue/<id>.json     one request per file (atomic rename writes)
      results/<id>.json   the resolved report (or failure) per request
      metrics.json        the service's live metrics snapshot

A client drops a request with :func:`submit_job` (or ``repro submit``)
and polls :func:`wait_result`; the server side (:func:`serve_jobdir`,
``repro serve``) ingests pending requests into an in-process
:class:`~repro.serve.ExperimentService`, writes results as jobs
resolve, and keeps ``metrics.json`` fresh.  Requests that hit the
service's admission bound stay in ``queue/`` untouched and are retried
on a later scan — the directory itself becomes the overflow buffer, so
backpressure never loses a request.

Duplicate requests (same spec, hence same content-addressed key)
coalesce inside the service: each request still gets its own result
file, all fanned out from the one execution.

A served job directory is **durable** by default: the owned service
journals every transition to ``jobdir/journal.jsonl`` (schema
``repro.job_journal/1``) and beats ``jobdir/heartbeat.json``.  A
server killed mid-batch picks up exactly where it died on restart —
unresolved journal records are resubmitted (request ids travel in the
journaled ``meta``), already-stored reports resolve as cache hits, and
a resolved record whose result file never landed is replayed so the
file appears.  Requests whose writer died mid-write (truncated JSON)
are skipped while fresh and rejected once stably malformed.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from ..engine import ExperimentSpec
from .queue import Job, QueueFull
from .service import ExperimentService

__all__ = [
    "JOB_REQUEST_SCHEMA",
    "JOB_RESULT_SCHEMA",
    "SERVICE_METRICS_SCHEMA",
    "submit_job",
    "wait_result",
    "serve_jobdir",
]

#: schema tag of one queued request file
JOB_REQUEST_SCHEMA = "repro.job_request/1"

#: schema tag of one result file
JOB_RESULT_SCHEMA = "repro.job_result/1"

#: schema tag of the metrics.json snapshot
SERVICE_METRICS_SCHEMA = "repro.service_metrics/1"

#: how long a truncated (mid-write) request file is left alone before
#: it is treated as stably malformed and rejected
MALFORMED_GRACE_S = 0.5


def _queue_dir(jobdir: Path) -> Path:
    return jobdir / "queue"


def _results_dir(jobdir: Path) -> Path:
    return jobdir / "results"


def _atomic_write(path: Path, payload: dict) -> None:
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True, indent=2))
    os.replace(tmp, path)


def submit_job(
    jobdir,
    spec: ExperimentSpec,
    priority: int = 0,
    client: str = "cli",
    job_id: Optional[str] = None,
    deadline_s: Optional[float] = None,
) -> str:
    """Drop one request into a job directory; returns the request id.

    The request file is written atomically into ``jobdir/queue/`` and
    named by submission time so a scanning server dispatches FIFO by
    default (priority still reorders inside the service queue).
    ``deadline_s`` is the queue-time budget the server applies once it
    ingests the request.
    """
    jobdir = Path(jobdir).expanduser()
    _queue_dir(jobdir).mkdir(parents=True, exist_ok=True)
    _results_dir(jobdir).mkdir(parents=True, exist_ok=True)
    if job_id is None:
        job_id = f"{time.time_ns():020d}-{uuid.uuid4().hex[:8]}"  # wall-clock-ok: request id only, never in results
    payload = {
        "schema": JOB_REQUEST_SCHEMA,
        "id": job_id,
        "spec": spec.to_dict(),
        "priority": priority,
        "client": client,
    }
    if deadline_s is not None:
        payload["deadline_s"] = float(deadline_s)
    _atomic_write(
        _queue_dir(jobdir) / f"{job_id}.json",
        payload,
    )
    return job_id


def wait_result(
    jobdir,
    job_id: str,
    timeout: float = 60.0,
    poll_s: float = 0.05,
) -> dict:
    """Poll for one request's result file; returns its parsed JSON.

    Raises :class:`TimeoutError` when no result appears in time.
    """
    path = _results_dir(Path(jobdir).expanduser()) / f"{job_id}.json"
    deadline = time.monotonic() + timeout  # wall-clock-ok: host-side polling only
    while True:
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            pass  # absent or mid-write: retry
        if time.monotonic() >= deadline:  # wall-clock-ok: host-side polling only
            raise TimeoutError(
                f"no result for job {job_id!r} within {timeout}s"
            )
        time.sleep(poll_s)


def _looks_truncated(text: str, exc: ValueError) -> bool:
    """Heuristic: did this JSON decode error happen at end-of-text?

    A writer killed mid-write leaves a prefix of valid JSON, so the
    decoder either runs off the end or finds an unterminated string; a
    structurally malformed (but complete) document errors mid-text
    instead and should be rejected at once.
    """
    pos = getattr(exc, "pos", None)
    if pos is not None and pos >= len(text.rstrip()):
        return True
    return "Unterminated string" in getattr(exc, "msg", "")


def _result_payload(job: Job, request_id: str, coalesced: bool) -> dict:
    error = job.exception(timeout=0)
    report = None if error is not None else job.result(timeout=0)
    return {
        "schema": JOB_RESULT_SCHEMA,
        "id": request_id,
        "status": "failed" if error is not None else "done",
        "error": None if error is None else str(error),
        "cache_hit": job.cache_hit,
        "coalesced": coalesced,
        "wait_s": job.wait_s,
        "run_s": job.run_s,
        "report": None if report is None else report.to_dict(),
    }


def serve_jobdir(
    jobdir,
    service: Optional[ExperimentService] = None,
    engine=None,
    cache=None,
    workers: int = 1,
    max_queue: int = 64,
    poll_s: float = 0.1,
    max_seconds: Optional[float] = None,
    once: bool = False,
    log: Optional[Callable[[str], None]] = None,
    durable: bool = True,
    deadline_s: Optional[float] = None,
    batch_timeout_s: Optional[float] = None,
    malformed_grace_s: float = MALFORMED_GRACE_S,
) -> dict:
    """Serve a job directory; returns the final metrics snapshot.

    ``once=True`` ingests every pending request, drains the service,
    flushes all results, and returns — the deterministic mode CI and
    tests use (duplicates visible at ingest time always coalesce).
    Otherwise the server polls ``jobdir/queue`` every ``poll_s``
    seconds until ``max_seconds`` elapses (forever when None), then
    drains gracefully.  ``metrics.json`` is refreshed after every scan
    and on exit.

    When the server owns its service (``service=None``) and
    ``durable=True``, the service journals to ``jobdir/journal.jsonl``
    and heartbeats ``jobdir/heartbeat.json``; on startup the journal
    is replayed and every request the previous server accepted but
    never answered is resubmitted and its result file eventually
    written — the kill-and-recover contract of ``repro serve``.
    """
    jobdir = Path(jobdir).expanduser()
    _queue_dir(jobdir).mkdir(parents=True, exist_ok=True)
    _results_dir(jobdir).mkdir(parents=True, exist_ok=True)
    owns_service = service is None
    if owns_service:
        service = ExperimentService(
            engine=engine,
            cache=cache,
            workers=workers,
            max_queue=max_queue,
            autostart=not once,
            journal=(jobdir / "journal.jsonl") if durable else None,
            heartbeat=(jobdir / "heartbeat.json") if durable else None,
            deadline_s=deadline_s,
            batch_timeout_s=batch_timeout_s,
        )
    say = log or (lambda message: None)
    # request id -> (job, coalesced-onto-earlier-request)
    pending: Dict[str, Tuple[Job, bool]] = {}
    seen_jobs: Dict[int, str] = {}

    def register(request_id: str, job: Job) -> None:
        coalesced = job.id in seen_jobs
        seen_jobs.setdefault(job.id, request_id)
        pending[request_id] = (job, coalesced)

    def recover_requests() -> int:
        """Re-route journaled request ids from a dead predecessor."""
        state = service.journal_state
        if state is None:
            return 0
        routed = 0
        # unresolved records were resubmitted by service recovery:
        # every request id journaled onto them still awaits a result
        for rec, job in service.recovered_jobs:
            for meta in rec.metas:
                rid = meta.get("request_id") if isinstance(meta, dict) else None
                if rid and rid not in pending:
                    register(rid, job)
                    routed += 1
        # resolved records whose result file never landed (killed
        # between the journal write and the flush): resubmit — the
        # store turns the replay into an instant cache hit
        for rec in state.in_order():
            if rec.unresolved or rec.spec is None:
                continue
            missing = [
                meta["request_id"]
                for meta in rec.metas
                if isinstance(meta, dict)
                and meta.get("request_id")
                and meta["request_id"] not in pending
                and not (
                    _results_dir(jobdir) / f"{meta['request_id']}.json"
                ).exists()
            ]
            if not missing:
                continue
            spec = ExperimentSpec.from_dict(rec.spec)
            for rid in missing:
                try:
                    job = service.submit(
                        spec,
                        priority=rec.priority,
                        client=rec.client,
                        meta={"request_id": rid},
                    )
                except QueueFull:  # pragma: no cover - empty at startup
                    say(f"queue full; cannot replay request {rid}")
                    break
                register(rid, job)
                routed += 1
        if routed:
            say(f"recovered {routed} pending request(s) from the journal")
        return routed

    def ingest() -> int:
        admitted = 0
        for path in sorted(_queue_dir(jobdir).glob("*.json")):
            try:
                text = path.read_text()
            except OSError as exc:
                say(f"skipping unreadable request {path.name}: {exc}")
                continue
            try:
                req = json.loads(text)
                spec = ExperimentSpec.from_dict(req["spec"])
                request_id = req.get("id", path.stem)
            except (ValueError, KeyError, TypeError) as exc:
                try:
                    age_s = time.time() - path.stat().st_mtime  # wall-clock-ok: mtime freshness of a host-side file
                except OSError:
                    age_s = float("inf")
                if (
                    isinstance(exc, ValueError)
                    and _looks_truncated(text, exc)
                    and age_s < malformed_grace_s
                ):
                    # a writer is (or just was) mid-write: leave the
                    # file for a later scan instead of rejecting a
                    # request that is still being spooled
                    say(f"skipping partial request {path.name} (mid-write)")
                    continue
                say(f"rejecting malformed request {path.name}: {exc}")
                _atomic_write(
                    _results_dir(jobdir) / f"{path.stem}.json",
                    {
                        "schema": JOB_RESULT_SCHEMA,
                        "id": path.stem,
                        "status": "failed",
                        "error": f"malformed request: {exc}",
                        "cache_hit": False,
                        "coalesced": False,
                        "report": None,
                    },
                )
                path.unlink(missing_ok=True)
                continue
            try:
                job = service.submit(
                    spec,
                    priority=int(req.get("priority", 0)),
                    client=str(req.get("client", "cli")),
                    deadline_s=req.get("deadline_s"),
                    meta={"request_id": request_id},
                )
            except QueueFull:
                # leave the file in place: the directory buffers the
                # overflow and a later scan retries after the drain
                say(f"queue full; deferring {path.name}")
                break
            register(request_id, job)
            path.unlink(missing_ok=True)
            admitted += 1
        return admitted

    def flush() -> int:
        written = 0
        for request_id in [r for r, (j, _) in pending.items() if j.done()]:
            job, coalesced = pending.pop(request_id)
            _atomic_write(
                _results_dir(jobdir) / f"{request_id}.json",
                _result_payload(job, request_id, coalesced),
            )
            written += 1
        return written

    def write_metrics() -> dict:
        snap = service.metrics_snapshot()
        _atomic_write(
            jobdir / "metrics.json",
            {"schema": SERVICE_METRICS_SCHEMA, **snap},
        )
        return snap

    def refresh_store() -> None:
        # fold in store entries other processes appended (a fleet
        # router bundle-syncing a stolen result, an operator's `repro
        # cache import`) so the next admission sees them as cache
        # hits; one stat() per scan when nothing changed
        if service.cache is not None:
            service.cache.refresh()

    try:
        recover_requests()
        if once:
            while True:
                refresh_store()
                admitted = ingest()
                service.start()
                service.drain()
                flush()
                if admitted == 0 and not pending:
                    break
            return write_metrics()
        start = time.monotonic()  # wall-clock-ok: host-side serving loop only
        while True:
            refresh_store()
            ingest()
            flush()
            write_metrics()
            if (
                max_seconds is not None
                and time.monotonic() - start >= max_seconds  # wall-clock-ok: host-side serving loop only
            ):
                break
            time.sleep(poll_s)
        service.drain()
        flush()
        return write_metrics()
    finally:
        if owns_service:
            service.shutdown(drain=True)
