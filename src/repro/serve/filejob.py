"""File-based job directory protocol: `repro serve` / `repro submit`.

The wire between service and clients is a plain directory — portable,
inspectable, and dependency-free::

    jobdir/
      queue/<id>.json     one request per file (atomic rename writes)
      results/<id>.json   the resolved report (or failure) per request
      metrics.json        the service's live metrics snapshot

A client drops a request with :func:`submit_job` (or ``repro submit``)
and polls :func:`wait_result`; the server side (:func:`serve_jobdir`,
``repro serve``) ingests pending requests into an in-process
:class:`~repro.serve.ExperimentService`, writes results as jobs
resolve, and keeps ``metrics.json`` fresh.  Requests that hit the
service's admission bound stay in ``queue/`` untouched and are retried
on a later scan — the directory itself becomes the overflow buffer, so
backpressure never loses a request.

Duplicate requests (same spec, hence same content-addressed key)
coalesce inside the service: each request still gets its own result
file, all fanned out from the one execution.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from ..engine import ExperimentSpec
from .queue import Job, QueueFull
from .service import ExperimentService

__all__ = [
    "JOB_REQUEST_SCHEMA",
    "JOB_RESULT_SCHEMA",
    "SERVICE_METRICS_SCHEMA",
    "submit_job",
    "wait_result",
    "serve_jobdir",
]

#: schema tag of one queued request file
JOB_REQUEST_SCHEMA = "repro.job_request/1"

#: schema tag of one result file
JOB_RESULT_SCHEMA = "repro.job_result/1"

#: schema tag of the metrics.json snapshot
SERVICE_METRICS_SCHEMA = "repro.service_metrics/1"


def _queue_dir(jobdir: Path) -> Path:
    return jobdir / "queue"


def _results_dir(jobdir: Path) -> Path:
    return jobdir / "results"


def _atomic_write(path: Path, payload: dict) -> None:
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True, indent=2))
    os.replace(tmp, path)


def submit_job(
    jobdir,
    spec: ExperimentSpec,
    priority: int = 0,
    client: str = "cli",
    job_id: Optional[str] = None,
) -> str:
    """Drop one request into a job directory; returns the request id.

    The request file is written atomically into ``jobdir/queue/`` and
    named by submission time so a scanning server dispatches FIFO by
    default (priority still reorders inside the service queue).
    """
    jobdir = Path(jobdir).expanduser()
    _queue_dir(jobdir).mkdir(parents=True, exist_ok=True)
    _results_dir(jobdir).mkdir(parents=True, exist_ok=True)
    if job_id is None:
        job_id = f"{time.time_ns():020d}-{uuid.uuid4().hex[:8]}"  # wall-clock-ok: request id only, never in results
    _atomic_write(
        _queue_dir(jobdir) / f"{job_id}.json",
        {
            "schema": JOB_REQUEST_SCHEMA,
            "id": job_id,
            "spec": spec.to_dict(),
            "priority": priority,
            "client": client,
        },
    )
    return job_id


def wait_result(
    jobdir,
    job_id: str,
    timeout: float = 60.0,
    poll_s: float = 0.05,
) -> dict:
    """Poll for one request's result file; returns its parsed JSON.

    Raises :class:`TimeoutError` when no result appears in time.
    """
    path = _results_dir(Path(jobdir).expanduser()) / f"{job_id}.json"
    deadline = time.monotonic() + timeout  # wall-clock-ok: host-side polling only
    while True:
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            pass  # absent or mid-write: retry
        if time.monotonic() >= deadline:  # wall-clock-ok: host-side polling only
            raise TimeoutError(
                f"no result for job {job_id!r} within {timeout}s"
            )
        time.sleep(poll_s)


def _result_payload(job: Job, request_id: str, coalesced: bool) -> dict:
    error = job.exception(timeout=0)
    report = None if error is not None else job.result(timeout=0)
    return {
        "schema": JOB_RESULT_SCHEMA,
        "id": request_id,
        "status": "failed" if error is not None else "done",
        "error": None if error is None else str(error),
        "cache_hit": job.cache_hit,
        "coalesced": coalesced,
        "wait_s": job.wait_s,
        "run_s": job.run_s,
        "report": None if report is None else report.to_dict(),
    }


def serve_jobdir(
    jobdir,
    service: Optional[ExperimentService] = None,
    engine=None,
    cache=None,
    workers: int = 1,
    max_queue: int = 64,
    poll_s: float = 0.1,
    max_seconds: Optional[float] = None,
    once: bool = False,
    log: Optional[Callable[[str], None]] = None,
) -> dict:
    """Serve a job directory; returns the final metrics snapshot.

    ``once=True`` ingests every pending request, drains the service,
    flushes all results, and returns — the deterministic mode CI and
    tests use (duplicates visible at ingest time always coalesce).
    Otherwise the server polls ``jobdir/queue`` every ``poll_s``
    seconds until ``max_seconds`` elapses (forever when None), then
    drains gracefully.  ``metrics.json`` is refreshed after every scan
    and on exit.
    """
    jobdir = Path(jobdir).expanduser()
    _queue_dir(jobdir).mkdir(parents=True, exist_ok=True)
    _results_dir(jobdir).mkdir(parents=True, exist_ok=True)
    owns_service = service is None
    if owns_service:
        service = ExperimentService(
            engine=engine,
            cache=cache,
            workers=workers,
            max_queue=max_queue,
            autostart=not once,
        )
    say = log or (lambda message: None)
    # request id -> (job, coalesced-onto-earlier-request)
    pending: Dict[str, Tuple[Job, bool]] = {}
    seen_jobs: Dict[int, str] = {}

    def ingest() -> int:
        admitted = 0
        for path in sorted(_queue_dir(jobdir).glob("*.json")):
            try:
                req = json.loads(path.read_text())
                spec = ExperimentSpec.from_dict(req["spec"])
                request_id = req.get("id", path.stem)
            except (OSError, ValueError, KeyError, TypeError) as exc:
                say(f"rejecting malformed request {path.name}: {exc}")
                _atomic_write(
                    _results_dir(jobdir) / f"{path.stem}.json",
                    {
                        "schema": JOB_RESULT_SCHEMA,
                        "id": path.stem,
                        "status": "failed",
                        "error": f"malformed request: {exc}",
                        "cache_hit": False,
                        "coalesced": False,
                        "report": None,
                    },
                )
                path.unlink(missing_ok=True)
                continue
            try:
                job = service.submit(
                    spec,
                    priority=int(req.get("priority", 0)),
                    client=str(req.get("client", "cli")),
                )
            except QueueFull:
                # leave the file in place: the directory buffers the
                # overflow and a later scan retries after the drain
                say(f"queue full; deferring {path.name}")
                break
            coalesced = job.id in seen_jobs
            seen_jobs.setdefault(job.id, request_id)
            pending[request_id] = (job, coalesced)
            path.unlink(missing_ok=True)
            admitted += 1
        return admitted

    def flush() -> int:
        written = 0
        for request_id in [r for r, (j, _) in pending.items() if j.done()]:
            job, coalesced = pending.pop(request_id)
            _atomic_write(
                _results_dir(jobdir) / f"{request_id}.json",
                _result_payload(job, request_id, coalesced),
            )
            written += 1
        return written

    def write_metrics() -> dict:
        snap = service.metrics_snapshot()
        _atomic_write(
            jobdir / "metrics.json",
            {"schema": SERVICE_METRICS_SCHEMA, **snap},
        )
        return snap

    try:
        if once:
            while True:
                admitted = ingest()
                service.start()
                service.drain()
                flush()
                if admitted == 0 and not pending:
                    break
            return write_metrics()
        start = time.monotonic()  # wall-clock-ok: host-side serving loop only
        while True:
            ingest()
            flush()
            write_metrics()
            if (
                max_seconds is not None
                and time.monotonic() - start >= max_seconds  # wall-clock-ok: host-side serving loop only
            ):
                break
            time.sleep(poll_s)
        service.drain()
        flush()
        return write_metrics()
    finally:
        if owns_service:
            service.shutdown(drain=True)
