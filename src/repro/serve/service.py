"""The long-running experiment service: one front door, many clients.

An :class:`ExperimentService` accepts :class:`~repro.engine.ExperimentSpec`
submissions from many concurrent clients and multiplexes them onto a
shared pool of simulator workers — the serving-stack shape (queueing,
dedup, batching, backpressure) the modular-supercomputing papers
describe for one heterogeneous machine serving many differently-shaped
workloads at once.

The pipeline per submission:

1. **Coalescing** — the spec's content-addressed key (from
   :mod:`repro.cache`) is checked against the in-flight map; an
   identical spec already queued or running merges onto the existing
   :class:`~repro.serve.queue.Job`, whose single execution fans its
   report out to every waiter bit-identically.
2. **Cache** — a stored report is served immediately; cache hits never
   enqueue and never touch the worker pool.
3. **Admission control** — the bounded priority queue either admits
   the job or rejects with a typed
   :class:`~repro.serve.queue.QueueFull` carrying a retry-after hint.
4. **Adaptive batching** — the scheduler groups queued jobs into
   :meth:`~repro.engine.Engine.run_many` batches sized by the observed
   per-spec latency (EWMA), targeting a fixed batch wall-time so
   batches stay small when runs are slow and amortize pool overhead
   when runs are fast.
5. **Execution** — batches run on a persistent process pool
   (``workers > 1``) or in-process; a crashed worker
   (``BrokenProcessPool``) requeues the batch with bounded retries on
   a fresh pool.

Live service metrics (queue depth, in-flight, hit/coalesce/reject
counters, wait/run latency histograms) are exported through
:class:`~repro.instrument.MetricsHub` and
:meth:`ExperimentService.metrics_snapshot`.

Typical use::

    from repro.api import Session

    with Session(cache=".repro-cache", workers=4).serve() as svc:
        jobs = [svc.submit(spec) for spec in specs]
        reports = [j.result() for j in jobs]
        print(svc.metrics_snapshot())
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import List, Optional

from ..cache import cache_key
from ..engine import Engine, _coerce_cache
from .metrics import ServiceMetrics
from .queue import Job, JobQueue, JobState, QueueFull

__all__ = ["ExperimentService"]

#: default EWMA smoothing for the observed per-spec run latency
_EWMA_ALPHA = 0.5

#: run-latency guess (seconds) before the first batch is measured
_DEFAULT_RUN_S = 0.05


class ExperimentService:
    """Shared experiment server: queue, coalesce, batch, execute, report.

    Parameters
    ----------
    engine, cache, workers
        The execution stack: an :class:`~repro.engine.Engine`, an
        optional :class:`~repro.cache.ResultCache` (or directory
        path), and the process-pool width (1 = in-process serial).
    max_queue
        Bound on pending jobs; submissions beyond it are rejected with
        :class:`~repro.serve.queue.QueueFull` (backpressure).
    max_batch, target_batch_s
        Adaptive batching knobs: batches never exceed ``max_batch``
        specs and aim for ``target_batch_s`` seconds of wall-time at
        the observed per-spec latency.
    max_retries
        How many times a job survives a worker-pool crash before it is
        failed.
    autostart
        Start the scheduler thread immediately; ``False`` lets tests
        (and the file-based server's ingest phase) queue submissions
        deterministically before dispatch begins.
    """

    def __init__(
        self,
        engine: Optional[Engine] = None,
        cache=None,
        workers: int = 1,
        max_queue: int = 64,
        max_batch: int = 8,
        target_batch_s: float = 2.0,
        max_retries: int = 2,
        autostart: bool = True,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1 (got {workers})")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if target_batch_s <= 0:
            raise ValueError("target_batch_s must be positive")
        if max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        self._engine = engine or Engine()
        self._cache = _coerce_cache(cache)
        self._workers = workers
        self._max_batch = max_batch
        self._target_batch_s = target_batch_s
        self._max_retries = max_retries
        self._metrics = ServiceMetrics()
        self._queue = JobQueue(max_depth=max_queue, retry_hint=self._retry_after)
        self._inflight: dict = {}  # key -> Job (queued or running)
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._stopping = False
        self._running_jobs = 0
        self._ewma_run_s: Optional[float] = None
        self._ids = itertools.count(1)
        self._pool = None
        self._thread: Optional[threading.Thread] = None
        if autostart:
            self.start()

    # -- properties ----------------------------------------------------------
    @property
    def cache(self):
        """The attached :class:`~repro.cache.ResultCache` (or None)."""
        return self._cache

    @property
    def workers(self) -> int:
        """Process-pool width batches fan out over (1 = in-process)."""
        return self._workers

    @property
    def queue_depth(self) -> int:
        """Jobs currently pending in the bounded queue."""
        return self._queue.depth

    @property
    def in_flight(self) -> int:
        """Jobs admitted but not yet resolved (queued + running)."""
        with self._lock:
            return len(self._inflight)

    @property
    def started(self) -> bool:
        """Whether the scheduler thread is running."""
        return self._thread is not None and self._thread.is_alive()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "ExperimentService":
        """Start the scheduler thread (idempotent); returns self."""
        with self._lock:
            if self._stopping:
                raise RuntimeError("service has been shut down")
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._scheduler_loop,
                    name="repro-serve-scheduler",
                    daemon=True,
                )
                self._thread.start()
        return self

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted job is resolved.

        Starts the scheduler if needed.  Returns True once the queue
        is empty and nothing is running; False on timeout.
        """
        self.start()
        deadline = (
            None if timeout is None else time.monotonic() + timeout  # wall-clock-ok: host-side telemetry only
        )
        with self._lock:
            while self._queue.depth > 0 or self._running_jobs > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()  # wall-clock-ok: host-side telemetry only
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the service; optionally finish admitted work first.

        ``drain=True`` (graceful) waits for the queue to empty before
        stopping; ``drain=False`` fails still-pending jobs with a
        RuntimeError.  Either way the scheduler thread and the worker
        pool are torn down and later submissions raise.
        """
        if drain and self._thread is not None:
            self.drain(timeout=timeout)
        with self._lock:
            self._stopping = True
            self._work.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        now = time.monotonic()  # wall-clock-ok: host-side telemetry only
        with self._lock:
            for job in self._queue.drain_pending():
                self._inflight.pop(job.key, None)
                self._metrics.failed += 1
                job._fail(
                    RuntimeError("service shut down before the job ran"), now
                )
            self._idle.notify_all()
        self._discard_pool()

    def __enter__(self) -> "ExperimentService":
        """Context-manager entry: the started service."""
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: graceful drain + shutdown."""
        self.shutdown(drain=exc_type is None)

    # -- submission ----------------------------------------------------------
    def submit(self, spec, priority: int = 0, client: str = "default") -> Job:
        """Submit one spec; returns the (possibly shared) job handle.

        Duplicate in-flight specs coalesce onto the existing job;
        cached specs resolve immediately without queueing; otherwise
        the job is admitted to the bounded queue or rejected with
        :class:`~repro.serve.queue.QueueFull`.
        """
        with self._lock:
            if self._stopping:
                raise RuntimeError("service has been shut down")
            self._metrics.submitted += 1
            key = (
                self._cache.key_for(spec)
                if self._cache is not None
                else cache_key(spec)
            )
            existing = self._inflight.get(key)
            if existing is not None:
                existing.waiters += 1
                self._metrics.coalesced += 1
                return existing
            now = time.monotonic()  # wall-clock-ok: host-side telemetry only
            if self._cache is not None:
                cached = self._cache.get(spec)
                if cached is not None:
                    job = Job(
                        next(self._ids), spec, key, priority, client, now
                    )
                    job.cache_hit = True
                    job._resolve(cached, now)
                    self._metrics.cache_hits += 1
                    self._metrics.completed += 1
                    self._metrics.wait.record(0.0)
                    return job
            job = Job(next(self._ids), spec, key, priority, client, now)
            try:
                self._queue.push(job)
            except QueueFull:
                self._metrics.rejected += 1
                raise
            self._inflight[key] = job
            self._metrics.accepted += 1
            self._metrics.peak_queue_depth = max(
                self._metrics.peak_queue_depth, self._queue.depth
            )
            self._metrics.peak_in_flight = max(
                self._metrics.peak_in_flight, len(self._inflight)
            )
            self._work.notify_all()
            return job

    def submit_many(
        self, specs, priority: int = 0, client: str = "default"
    ) -> List[Job]:
        """Submit a batch of specs; one job handle per spec, in order."""
        return [
            self.submit(spec, priority=priority, client=client)
            for spec in specs
        ]

    # -- metrics -------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """Live service metrics: queue/admission/coalesce/cache
        counters plus wait and run latency histograms."""
        with self._lock:
            snap = self._metrics.snapshot(
                queue_depth=self._queue.depth,
                in_flight=len(self._inflight),
            )
            snap["workers"] = self._workers
            snap["max_queue"] = self._queue.max_depth
            snap["max_batch"] = self._max_batch
            snap["ewma_run_s"] = self._ewma_run_s or 0.0
            return snap

    def stats(self) -> dict:
        """Alias of :meth:`metrics_snapshot` (MetricsHub source API)."""
        return self.metrics_snapshot()

    @property
    def hub(self):
        """A :class:`~repro.instrument.MetricsHub` observing this
        service (and its cache when attached)."""
        from ..instrument import MetricsHub

        return MetricsHub(service=self, cache=self._cache)

    # -- scheduling internals ------------------------------------------------
    def _retry_after(self, depth: int) -> float:
        """Backpressure hint: when a queue slot should free up."""
        per = self._ewma_run_s or _DEFAULT_RUN_S
        return max(per, depth * per / max(1, self._workers))

    def _batch_size(self) -> int:
        """Next batch size from the observed per-spec latency."""
        per = self._ewma_run_s
        if per is None or per <= 0:
            size = self._workers
        else:
            size = int(self._target_batch_s / per)
        return max(1, min(self._max_batch, size))

    def _observe_run_latency(self, per_spec_s: float) -> None:
        if self._ewma_run_s is None:
            self._ewma_run_s = per_spec_s
        else:
            self._ewma_run_s = (
                _EWMA_ALPHA * per_spec_s
                + (1.0 - _EWMA_ALPHA) * self._ewma_run_s
            )

    def _scheduler_loop(self) -> None:
        while True:
            with self._lock:
                while not self._stopping and self._queue.depth == 0:
                    self._idle.notify_all()
                    self._work.wait(timeout=0.05)
                if self._stopping:
                    self._idle.notify_all()
                    return
                batch = self._queue.pop_batch(self._batch_size())
                now = time.monotonic()  # wall-clock-ok: host-side telemetry only
                for job in batch:
                    job.state = JobState.RUNNING
                    job.started_s = now
                    self._metrics.wait.record(now - job.submitted_s)
                self._running_jobs = len(batch)
                self._metrics.batches += 1
            try:
                self._execute_batch(batch)
            finally:
                with self._lock:
                    self._running_jobs = 0
                    self._idle.notify_all()

    # -- execution -----------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self._workers)
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def _execute_batch(self, batch: List[Job]) -> None:
        from concurrent.futures.process import BrokenProcessPool

        specs = [job.spec for job in batch]
        t0 = time.monotonic()  # wall-clock-ok: host-side telemetry only
        try:
            if self._workers > 1 and len(batch) > 1:
                sweep = self._engine.run_many(
                    specs, workers=self._workers, pool=self._ensure_pool()
                )
            else:
                sweep = self._engine.run_many(specs, workers=1)
        except BrokenProcessPool:
            # a worker died abruptly; the jobs are intact — recycle the
            # pool and requeue with bounded retries
            self._discard_pool()
            self._requeue_batch(batch)
            return
        except Exception as exc:
            # an app-level failure poisons a pooled batch wholesale;
            # isolate it by running each job alone, in-process
            if len(batch) == 1:
                self._finish_failed(batch[0], exc)
                return
            for job in batch:
                try:
                    report = self._engine.run(job.spec)
                except Exception as job_exc:  # noqa: BLE001 - job carries it
                    self._finish_failed(job, job_exc)
                else:
                    if self._cache is not None:
                        self._cache.put(job.spec, report)
                    self._finish_ok(job, report)
            return
        wall = time.monotonic() - t0  # wall-clock-ok: host-side telemetry only
        with self._lock:
            self._observe_run_latency(wall / max(1, len(batch)))
        for job, report in zip(batch, sweep.reports):
            if self._cache is not None:
                self._cache.put(job.spec, report)
            self._finish_ok(job, report)

    def _requeue_batch(self, batch: List[Job]) -> None:
        now = time.monotonic()  # wall-clock-ok: host-side telemetry only
        with self._lock:
            for job in batch:
                job.retries += 1
                if job.retries > self._max_retries:
                    self._inflight.pop(job.key, None)
                    self._metrics.failed += 1
                    job._fail(
                        RuntimeError(
                            f"job {job.id} failed after {job.retries} "
                            "worker-pool crashes"
                        ),
                        now,
                    )
                else:
                    self._metrics.requeued += 1
                    self._queue.requeue(job)
            self._work.notify_all()

    def _finish_ok(self, job: Job, report) -> None:
        now = time.monotonic()  # wall-clock-ok: host-side telemetry only
        with self._lock:
            self._inflight.pop(job.key, None)
            job._resolve(report, now)
            self._metrics.run.record(job.run_s)
            self._metrics.executed += 1
            self._metrics.completed += 1

    def _finish_failed(self, job: Job, error: BaseException) -> None:
        now = time.monotonic()  # wall-clock-ok: host-side telemetry only
        with self._lock:
            self._inflight.pop(job.key, None)
            job._fail(error, now)
            self._metrics.failed += 1
