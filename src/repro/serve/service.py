"""The long-running experiment service: one front door, many clients.

An :class:`ExperimentService` accepts :class:`~repro.engine.ExperimentSpec`
submissions from many concurrent clients and multiplexes them onto a
shared pool of simulator workers — the serving-stack shape (queueing,
dedup, batching, backpressure) the modular-supercomputing papers
describe for one heterogeneous machine serving many differently-shaped
workloads at once.

The pipeline per submission:

1. **Coalescing** — the spec's content-addressed key (from
   :mod:`repro.cache`) is checked against the in-flight map; an
   identical spec already queued or running merges onto the existing
   :class:`~repro.serve.queue.Job`, whose single execution fans its
   report out to every waiter bit-identically.
2. **Cache** — a stored report is served immediately; cache hits never
   enqueue and never touch the worker pool.
3. **Admission control** — the bounded priority queue either admits
   the job or rejects with a typed
   :class:`~repro.serve.queue.QueueFull` carrying a retry-after hint.
4. **Adaptive batching** — the scheduler groups queued jobs into
   :meth:`~repro.engine.Engine.run_many` batches sized by the observed
   per-spec latency (EWMA), targeting a fixed batch wall-time so
   batches stay small when runs are slow and amortize pool overhead
   when runs are fast.
5. **Execution** — batches run on a persistent process pool
   (``workers > 1``) or in-process; a crashed worker
   (``BrokenProcessPool``) requeues the batch with bounded retries on
   a fresh pool.

Layered on top is the **durability and self-healing** machinery of the
service (all opt-in; a journal-less service behaves exactly as before):

* a write-ahead :class:`~repro.serve.journal.JobJournal` records every
  accepted→dispatched→completed/failed transition, so a SIGKILLed
  service recovers exactly its un-completed jobs on restart — replayed
  in original order, never re-running one whose report already reached
  the store;
* per-job ``deadline_s`` queue-time budgets fail expired jobs with a
  typed :class:`~repro.serve.queue.DeadlineExceeded` before they waste
  a worker slot, and a ``batch_timeout_s`` watchdog recycles a hung
  pool and isolates the offending jobs;
* a spec that keeps crashing the pool is **quarantined** after
  ``max_retries`` — journaled with its traceback, failed with a typed
  :class:`~repro.serve.queue.PoisonJobError`, and short-circuited on
  every later submission and recovery (a circuit breaker against
  poison-job crash loops);
* a heartbeat file distinguishes "alive and serving" from "stalled"
  from "dead" for supervisors and ``repro serve --status``.

Live service metrics (queue depth, in-flight, hit/coalesce/reject
counters, durability counters, wait/run latency histograms) are
exported through :class:`~repro.instrument.MetricsHub` and
:meth:`ExperimentService.metrics_snapshot`.

Typical use::

    from repro.api import Session

    with Session(cache=".repro-cache", workers=4).serve() as svc:
        jobs = [svc.submit(spec) for spec in specs]
        reports = [j.result() for j in jobs]
        print(svc.metrics_snapshot())
"""

from __future__ import annotations

import itertools
import threading
import time
import traceback as _traceback
from typing import List, Optional, Tuple

from ..backoff import ExponentialBackoff
from ..cache import cache_key
from ..engine import Engine, ExperimentSpec, _coerce_cache
from .health import write_heartbeat
from .journal import JobJournal, JournalRecord
from .metrics import ServiceMetrics
from .queue import (
    DeadlineExceeded,
    Job,
    JobQueue,
    JobState,
    PoisonJobError,
    QueueFull,
)

__all__ = ["ExperimentService"]

#: default EWMA smoothing for the observed per-spec run latency
_EWMA_ALPHA = 0.5

#: run-latency guess (seconds) before the first batch is measured
_DEFAULT_RUN_S = 0.05


class ExperimentService:
    """Shared experiment server: queue, coalesce, batch, execute, report.

    Parameters
    ----------
    engine, cache, workers
        The execution stack: an :class:`~repro.engine.Engine`, an
        optional :class:`~repro.cache.ResultCache` (or directory
        path), and the process-pool width (1 = in-process serial).
    max_queue
        Bound on pending jobs; submissions beyond it are rejected with
        :class:`~repro.serve.queue.QueueFull` (backpressure).
    max_batch, target_batch_s
        Adaptive batching knobs: batches never exceed ``max_batch``
        specs and aim for ``target_batch_s`` seconds of wall-time at
        the observed per-spec latency.
    max_retries
        How many times a job survives a worker-pool crash before it is
        quarantined as a poison job.
    autostart
        Start the scheduler thread immediately; ``False`` lets tests
        (and the file-based server's ingest phase) queue submissions
        deterministically before dispatch begins.
    journal, autorecover
        Path (or :class:`~repro.serve.journal.JobJournal`) of the
        write-ahead job journal.  With ``autorecover=True`` (default)
        construction replays it and resubmits every unresolved job;
        recovered jobs keep their original journal sequence numbers.
        ``None`` (default) disables durability entirely.
    deadline_s
        Default queue-time budget applied to every submission that
        does not carry its own; ``None`` = no deadline.
    batch_timeout_s
        Watchdog bound on one batch's wall-time.  A batch exceeding it
        has its pool recycled and its jobs requeued in isolation
        (counting toward ``max_retries``); ``None`` disables the
        watchdog.
    heartbeat, heartbeat_interval_s
        Path of the liveness heartbeat file, rewritten atomically
        every ``heartbeat_interval_s`` seconds while the scheduler
        runs; ``None`` disables it.
    """

    def __init__(
        self,
        engine: Optional[Engine] = None,
        cache=None,
        workers: int = 1,
        max_queue: int = 64,
        max_batch: int = 8,
        target_batch_s: float = 2.0,
        max_retries: int = 2,
        autostart: bool = True,
        journal=None,
        autorecover: bool = True,
        deadline_s: Optional[float] = None,
        batch_timeout_s: Optional[float] = None,
        heartbeat=None,
        heartbeat_interval_s: float = 1.0,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1 (got {workers})")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if target_batch_s <= 0:
            raise ValueError("target_batch_s must be positive")
        if max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if deadline_s is not None and deadline_s < 0:
            raise ValueError("deadline_s cannot be negative")
        if batch_timeout_s is not None and batch_timeout_s <= 0:
            raise ValueError("batch_timeout_s must be positive")
        if heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        self._engine = engine or Engine()
        self._cache = _coerce_cache(cache)
        self._workers = workers
        self._max_batch = max_batch
        self._target_batch_s = target_batch_s
        self._max_retries = max_retries
        self._default_deadline_s = deadline_s
        self._batch_timeout_s = batch_timeout_s
        self._metrics = ServiceMetrics()
        self._queue = JobQueue(max_depth=max_queue, retry_hint=self._retry_after)
        self._inflight: dict = {}  # key -> Job (queued or running)
        self._quarantined: dict = {}  # key -> reason (circuit breaker)
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._stopping = False
        self._running_jobs = 0
        self._ewma_run_s: Optional[float] = None
        self._ids = itertools.count(1)
        self._pool = None
        self._thread: Optional[threading.Thread] = None
        if journal is None or isinstance(journal, JobJournal):
            self._journal = journal
        else:
            self._journal = JobJournal(journal)
        self._heartbeat_path = heartbeat
        self._heartbeat_interval_s = heartbeat_interval_s
        self._hb_thread: Optional[threading.Thread] = None
        self._hb_stop = threading.Event()
        self._last_heartbeat_s: Optional[float] = None
        #: (JournalRecord, Job) pairs resubmitted by the last recovery
        #: (the file-job server re-registers their pending requests)
        self.recovered_jobs: List[Tuple[JournalRecord, Job]] = []
        #: the replayed journal state of the last recovery (or None)
        self.journal_state = None
        if self._journal is not None and autorecover:
            self.recover()
        if autostart:
            self.start()

    # -- properties ----------------------------------------------------------
    @property
    def cache(self):
        """The attached :class:`~repro.cache.ResultCache` (or None)."""
        return self._cache

    @property
    def workers(self) -> int:
        """Process-pool width batches fan out over (1 = in-process)."""
        return self._workers

    @property
    def queue_depth(self) -> int:
        """Jobs currently pending in the bounded queue."""
        return self._queue.depth

    @property
    def in_flight(self) -> int:
        """Jobs admitted but not yet resolved (queued + running)."""
        with self._lock:
            return len(self._inflight)

    @property
    def started(self) -> bool:
        """Whether the scheduler thread is running."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def queue_depth(self) -> int:
        """Jobs currently pending in the admission queue (the load
        signal fleet-level placement and work stealing read)."""
        return self._queue.depth

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "ExperimentService":
        """Start the scheduler thread (idempotent); returns self."""
        with self._lock:
            if self._stopping:
                raise RuntimeError("service has been shut down")
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._scheduler_loop,
                    name="repro-serve-scheduler",
                    daemon=True,
                )
                self._thread.start()
            if self._heartbeat_path is not None and (
                self._hb_thread is None or not self._hb_thread.is_alive()
            ):
                self._hb_stop.clear()
                self._hb_thread = threading.Thread(
                    target=self._heartbeat_loop,
                    name="repro-serve-heartbeat",
                    daemon=True,
                )
                self._hb_thread.start()
        return self

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted job is resolved.

        Starts the scheduler if needed.  Returns True once the queue
        is empty and nothing is running; False on timeout.
        """
        self.start()
        deadline = (
            None if timeout is None else time.monotonic() + timeout  # wall-clock-ok: host-side telemetry only
        )
        with self._lock:
            while self._queue.depth > 0 or self._running_jobs > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()  # wall-clock-ok: host-side telemetry only
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the service; optionally finish admitted work first.

        ``drain=True`` (graceful) waits for the queue to empty before
        stopping; ``drain=False`` fails still-pending jobs with a
        RuntimeError.  Either way the scheduler thread and the worker
        pool are torn down and later submissions raise.
        """
        if drain and self._thread is not None:
            self.drain(timeout=timeout)
        with self._lock:
            self._stopping = True
            self._work.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=5.0)
        now = time.monotonic()  # wall-clock-ok: host-side telemetry only
        clean = True
        with self._lock:
            for job in self._queue.drain_pending():
                self._inflight.pop(job.key, None)
                self._metrics.failed += 1
                clean = False
                if self._journal is not None:
                    for seq in job.journal_seqs:
                        self._journal.record_failed(
                            seq, "service shut down before the job ran"
                        )
                job._fail(
                    RuntimeError("service shut down before the job ran"), now
                )
            clean = clean and not self._inflight
            self._idle.notify_all()
        self._discard_pool()
        if self._journal is not None and clean:
            # nothing unresolved: shrink the journal to its quarantine set
            self._journal.compact()
        if self._heartbeat_path is not None:
            write_heartbeat(
                self._heartbeat_path, "stopped", self._heartbeat_digest()
            )

    def __enter__(self) -> "ExperimentService":
        """Context-manager entry: the started service."""
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: graceful drain + shutdown."""
        self.shutdown(drain=exc_type is None)

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        spec,
        priority: int = 0,
        client: str = "default",
        deadline_s: Optional[float] = None,
        meta: Optional[dict] = None,
    ) -> Job:
        """Submit one spec; returns the (possibly shared) job handle.

        Duplicate in-flight specs coalesce onto the existing job;
        cached specs resolve immediately without queueing; a
        quarantined spec fails immediately with
        :class:`~repro.serve.queue.PoisonJobError`; otherwise the job
        is admitted to the bounded queue or rejected with
        :class:`~repro.serve.queue.QueueFull`.

        ``deadline_s`` is a queue-time budget (falls back to the
        service default); ``meta`` is an opaque client payload
        journaled with the job so a restarted file-job server can
        re-route the result (pass None to skip journaling cache hits).
        """
        if deadline_s is None:
            deadline_s = self._default_deadline_s
        with self._lock:
            if self._stopping:
                raise RuntimeError("service has been shut down")
            self._metrics.submitted += 1
            key = (
                self._cache.key_for(spec)
                if self._cache is not None
                else cache_key(spec)
            )
            now = time.monotonic()  # wall-clock-ok: host-side telemetry only
            reason = self._quarantined.get(key)
            if reason is not None:
                # circuit breaker: this spec already proved poisonous
                job = Job(next(self._ids), spec, key, priority, client, now)
                self._metrics.quarantine_hits += 1
                job._fail(PoisonJobError(job.id, key, reason), now)
                return job
            existing = self._inflight.get(key)
            if existing is not None:
                existing.waiters += 1
                self._metrics.coalesced += 1
                if (
                    meta is not None
                    and self._journal is not None
                    and existing.journal_seqs
                ):
                    self._journal.record_attached(
                        existing.journal_seqs[0], meta
                    )
                return existing
            if self._cache is not None:
                cached = self._cache.get(spec)
                if cached is not None:
                    job = Job(
                        next(self._ids), spec, key, priority, client, now
                    )
                    job.cache_hit = True
                    if meta is not None and self._journal is not None:
                        # durable even for instant hits: the file-job
                        # server still owes a result file for this
                        # request, and a crash before it lands must
                        # resubmit (hitting the cache again)
                        job.journal_seqs = [job.id]
                        self._journal.record_accepted(
                            job.id,
                            key,
                            self._spec_dict(spec),
                            priority=priority,
                            client=client,
                            deadline_s=deadline_s,
                            meta=meta,
                        )
                        self._journal.record_completed(job.id)
                    job._resolve(cached, now)
                    self._metrics.cache_hits += 1
                    self._metrics.completed += 1
                    self._metrics.wait.record(0.0)
                    return job
            job = Job(
                next(self._ids),
                spec,
                key,
                priority,
                client,
                now,
                deadline_s=deadline_s,
            )
            try:
                self._queue.push(job)
            except QueueFull:
                self._metrics.rejected += 1
                raise
            if self._journal is not None:
                job.journal_seqs = [job.id]
                self._journal.record_accepted(
                    job.id,
                    key,
                    self._spec_dict(spec),
                    priority=priority,
                    client=client,
                    deadline_s=deadline_s,
                    meta=meta,
                )
            self._inflight[key] = job
            self._metrics.accepted += 1
            self._metrics.peak_queue_depth = max(
                self._metrics.peak_queue_depth, self._queue.depth
            )
            self._metrics.peak_in_flight = max(
                self._metrics.peak_in_flight, len(self._inflight)
            )
            self._work.notify_all()
            return job

    def submit_with_retry(
        self,
        spec,
        priority: int = 0,
        client: str = "default",
        deadline_s: Optional[float] = None,
        meta: Optional[dict] = None,
        max_attempts: int = 8,
        wait_timeout_s: Optional[float] = None,
        backoff: Optional[ExponentialBackoff] = None,
        sleep=time.sleep,
    ) -> Job:
        """:meth:`submit`, retrying :class:`QueueFull` with backoff.

        The client-resilience front door: on a typed
        :class:`~repro.serve.queue.QueueFull` rejection it backs off
        with decorrelated jitter (never undercutting the server's
        ``retry_after_s`` hint) and resubmits, up to ``max_attempts``
        tries or ``wait_timeout_s`` seconds of total waiting —
        whichever bound trips first re-raises the last ``QueueFull``.
        ``backoff`` and ``sleep`` are injectable for deterministic
        tests.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        bo = backoff or ExponentialBackoff(
            base_s=0.05, factor=3.0, cap_s=2.0, decorrelated=True
        )
        give_up_at = (
            None
            if wait_timeout_s is None
            else time.monotonic() + wait_timeout_s  # wall-clock-ok: host-side telemetry only
        )
        for attempt in range(max_attempts):
            try:
                return self.submit(
                    spec,
                    priority=priority,
                    client=client,
                    deadline_s=deadline_s,
                    meta=meta,
                )
            except QueueFull as exc:
                if attempt == max_attempts - 1:
                    raise
                delay = bo.next_delay(floor_s=exc.retry_after_s)
                if give_up_at is not None:
                    remaining = give_up_at - time.monotonic()  # wall-clock-ok: host-side telemetry only
                    if remaining <= 0:
                        raise
                    delay = min(delay, remaining)
                sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def submit_many(
        self, specs, priority: int = 0, client: str = "default"
    ) -> List[Job]:
        """Submit a batch of specs; one job handle per spec, in order."""
        return [
            self.submit(spec, priority=priority, client=client)
            for spec in specs
        ]

    @staticmethod
    def _spec_dict(spec) -> dict:
        """JSON-safe spec form for the journal (best effort)."""
        try:
            return spec.to_dict()
        except AttributeError:
            return dict(spec)

    # -- recovery ------------------------------------------------------------
    def recover(self) -> int:
        """Replay the journal; resubmit unresolved work; return the count.

        Called automatically at construction (``autorecover=True``).
        Recovered jobs keep their original journal sequence numbers
        and are requeued in original order (bypassing the admission
        bound — they were already accepted once); a record whose
        report already reached the store resolves instantly as a cache
        hit, and a record whose key is quarantined is failed, not
        re-run.  The journal is compacted when nothing was unresolved.
        """
        if self._journal is None:
            return 0
        state = self._journal.replay(trim=True)
        self.journal_state = state
        self.recovered_jobs = []
        with self._lock:
            for key, rec in state.quarantined.items():
                self._quarantined.setdefault(
                    key, rec.error or "quarantined in a previous run"
                )
            # fresh ids start above every journaled sequence number
            self._ids = itertools.count(state.max_seq + 1)
        unresolved = state.unresolved()
        recovered = 0
        for rec in unresolved:
            if rec.spec is None:
                self._journal.record_failed(
                    rec.seq, "unrecoverable journal record (no spec)"
                )
                continue
            reason = self._quarantined.get(rec.key)
            if reason is not None:
                self._journal.record_failed(rec.seq, reason)
                continue
            job = self._resubmit_record(rec)
            recovered += 1
            self.recovered_jobs.append((rec, job))
        with self._lock:
            if recovered:
                self._metrics.journal_replays += 1
                self._metrics.recovered += recovered
                self._work.notify_all()
        if not unresolved:
            self._journal.compact(state)
        return recovered

    def _resubmit_record(self, rec: JournalRecord) -> Job:
        """Re-admit one unresolved journal record as a live job."""
        spec = ExperimentSpec.from_dict(rec.spec)
        now = time.monotonic()  # wall-clock-ok: host-side telemetry only
        with self._lock:
            key = rec.key or (
                self._cache.key_for(spec)
                if self._cache is not None
                else cache_key(spec)
            )
            existing = self._inflight.get(key)
            if existing is not None:
                # two unresolved records, one spec: coalesce on replay
                existing.waiters += 1
                existing.journal_seqs.append(rec.seq)
                return existing
            if self._cache is not None:
                cached = self._cache.get(spec)
                if cached is not None:
                    # the dead process stored the report but died
                    # before journaling completion — never re-run
                    job = Job(
                        rec.seq, spec, key, rec.priority, rec.client, now
                    )
                    job.journal_seqs = [rec.seq]
                    job.cache_hit = True
                    self._journal.record_completed(rec.seq)
                    job._resolve(cached, now)
                    self._metrics.completed += 1
                    return job
            job = Job(
                rec.seq,
                spec,
                key,
                rec.priority,
                rec.client,
                now,
                deadline_s=rec.deadline_s,  # fresh budget from restart
            )
            job.journal_seqs = [rec.seq]
            self._queue.requeue(job)  # accepted once already: no bound
            self._inflight[key] = job
            return job

    # -- metrics -------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """Live service metrics: queue/admission/coalesce/cache
        counters plus wait and run latency histograms."""
        with self._lock:
            snap = self._metrics.snapshot(
                queue_depth=self._queue.depth,
                in_flight=len(self._inflight),
            )
            snap["workers"] = self._workers
            snap["max_queue"] = self._queue.max_depth
            snap["max_batch"] = self._max_batch
            snap["ewma_run_s"] = self._ewma_run_s or 0.0
            if self._last_heartbeat_s is None:
                snap["heartbeat_age_s"] = 0.0
            else:
                snap["heartbeat_age_s"] = max(
                    0.0,
                    time.monotonic() - self._last_heartbeat_s,  # wall-clock-ok: host-side telemetry only
                )
            return snap

    def stats(self) -> dict:
        """Alias of :meth:`metrics_snapshot` (MetricsHub source API)."""
        return self.metrics_snapshot()

    @property
    def hub(self):
        """A :class:`~repro.instrument.MetricsHub` observing this
        service (and its cache when attached)."""
        from ..instrument import MetricsHub

        return MetricsHub(service=self, cache=self._cache)

    # -- scheduling internals ------------------------------------------------
    def _retry_after(self, depth: int) -> float:
        """Backpressure hint: when a queue slot should free up."""
        per = self._ewma_run_s or _DEFAULT_RUN_S
        return max(per, depth * per / max(1, self._workers))

    def _batch_size(self) -> int:
        """Next batch size from the observed per-spec latency."""
        per = self._ewma_run_s
        if per is None or per <= 0:
            size = self._workers
        else:
            size = int(self._target_batch_s / per)
        return max(1, min(self._max_batch, size))

    def _observe_run_latency(self, per_spec_s: float) -> None:
        if self._ewma_run_s is None:
            self._ewma_run_s = per_spec_s
        else:
            self._ewma_run_s = (
                _EWMA_ALPHA * per_spec_s
                + (1.0 - _EWMA_ALPHA) * self._ewma_run_s
            )

    def _scheduler_loop(self) -> None:
        while True:
            with self._lock:
                while not self._stopping and self._queue.depth == 0:
                    self._idle.notify_all()
                    self._work.wait(timeout=0.05)
                if self._stopping:
                    self._idle.notify_all()
                    return
                now = time.monotonic()  # wall-clock-ok: host-side telemetry only
                for job in self._queue.pop_expired(now):
                    # expired in the queue: fail fast, never dispatch
                    self._inflight.pop(job.key, None)
                    self._metrics.deadline_misses += 1
                    self._metrics.failed += 1
                    error = DeadlineExceeded(
                        job.id, job.deadline_s, now - job.submitted_s
                    )
                    if self._journal is not None:
                        for seq in job.journal_seqs:
                            self._journal.record_failed(seq, str(error))
                    job._fail(error, now)
                if self._queue.depth == 0:
                    continue
                batch = self._queue.pop_batch(self._batch_size())
                now = time.monotonic()  # wall-clock-ok: host-side telemetry only
                for job in batch:
                    job.state = JobState.RUNNING
                    job.started_s = now
                    self._metrics.wait.record(now - job.submitted_s)
                    if self._journal is not None:
                        for seq in job.journal_seqs:
                            self._journal.record_dispatched(seq)
                self._running_jobs = len(batch)
                self._metrics.batches += 1
            try:
                self._execute_batch(batch)
            finally:
                with self._lock:
                    self._running_jobs = 0
                    self._idle.notify_all()

    # -- execution -----------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self._workers)
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def _run_batch(self, batch: List[Job]) -> tuple:
        """Run one batch and return its outcome without touching jobs.

        Returns ``(kind, payload, wall_s)`` where kind is ``"ok"``
        (payload = reports), ``"broken"`` (payload = formatted pool
        traceback), or ``"error"`` (payload = the exception).  Pure
        compute: shared job state is only ever mutated by
        :meth:`_apply_outcome` on the scheduler thread, so a watchdog
        can abandon a hung run without racing a late finisher.
        """
        from concurrent.futures.process import BrokenProcessPool

        specs = [job.spec for job in batch]
        t0 = time.monotonic()  # wall-clock-ok: host-side telemetry only
        try:
            if self._workers > 1 and len(batch) > 1:
                sweep = self._engine.run_many(
                    specs, workers=self._workers, pool=self._ensure_pool()
                )
            else:
                sweep = self._engine.run_many(specs, workers=1)
        except BrokenProcessPool:
            return ("broken", _traceback.format_exc(), 0.0)
        except Exception as exc:  # noqa: BLE001 - outcome carries it
            return ("error", exc, 0.0)
        wall = time.monotonic() - t0  # wall-clock-ok: host-side telemetry only
        return ("ok", sweep.reports, wall)

    def _run_batch_watched(self, batch: List[Job]) -> tuple:
        """:meth:`_run_batch` under the ``batch_timeout_s`` watchdog.

        The batch runs on a disposable daemon thread; if it exceeds
        the bound the pool is recycled (hung workers die with it), the
        runner thread is abandoned, and a ``("timeout", ...)`` outcome
        is returned instead.  A late outcome from the abandoned runner
        is dropped — its jobs were requeued and belong to a future
        batch.
        """
        timeout = self._batch_timeout_s
        if timeout is None:
            return self._run_batch(batch)
        box: dict = {}
        done = threading.Event()

        def runner() -> None:
            box["outcome"] = self._run_batch(batch)
            done.set()

        thread = threading.Thread(
            target=runner, name="repro-serve-batch", daemon=True
        )
        thread.start()
        if done.wait(timeout):
            return box["outcome"]
        self._discard_pool()
        return ("timeout", None, timeout)

    def _execute_batch(self, batch: List[Job]) -> None:
        self._apply_outcome(batch, self._run_batch_watched(batch))

    def _apply_outcome(self, batch: List[Job], outcome: tuple) -> None:
        """Fold one batch outcome into job/metric/journal state."""
        kind, payload, wall = outcome
        if kind == "broken":
            # a worker died abruptly; the jobs are intact — recycle the
            # pool and requeue (isolated) with bounded retries
            self._discard_pool()
            self._requeue_batch(
                batch, reason="crashed the worker pool", tb=payload
            )
            return
        if kind == "timeout":
            with self._lock:
                self._metrics.batch_timeouts += 1
            self._requeue_batch(
                batch,
                reason=f"hung past the {wall:.3f}s batch timeout",
            )
            return
        if kind == "error":
            # an app-level failure poisons a pooled batch wholesale;
            # isolate it by running each job alone, in-process
            if len(batch) == 1:
                self._finish_failed(batch[0], payload)
                return
            for job in batch:
                try:
                    report = self._engine.run(job.spec)
                except Exception as job_exc:  # noqa: BLE001 - job carries it
                    self._finish_failed(job, job_exc)
                else:
                    self._store_and_finish(job, report)
            return
        with self._lock:
            self._observe_run_latency(wall / max(1, len(batch)))
        for job, report in zip(batch, payload):
            self._store_and_finish(job, report)

    def _store_and_finish(self, job: Job, report) -> None:
        """Persist then resolve — store put strictly precedes the
        journal's completion record, so a crash between the two only
        ever recovers into a cache hit, never a re-run."""
        if self._cache is not None:
            self._cache.put(job.spec, report)
        if self._journal is not None:
            for seq in job.journal_seqs:
                self._journal.record_completed(seq)
        self._finish_ok(job, report)

    def _requeue_batch(
        self,
        batch: List[Job],
        reason: str = "crashed the worker pool",
        tb: Optional[str] = None,
    ) -> None:
        now = time.monotonic()  # wall-clock-ok: host-side telemetry only
        with self._lock:
            for job in batch:
                job.retries += 1
                if job.retries > self._max_retries:
                    self._quarantine(
                        job,
                        f"{reason} {job.retries} times",
                        tb=tb,
                        now=now,
                    )
                else:
                    job.isolate = True  # next attempt runs alone
                    self._metrics.requeued += 1
                    self._queue.requeue(job)
            self._work.notify_all()

    def _quarantine(
        self,
        job: Job,
        reason: str,
        tb: Optional[str] = None,
        now: Optional[float] = None,
    ) -> None:
        """Trip the circuit breaker: fail the job, remember the key."""
        if now is None:
            now = time.monotonic()  # wall-clock-ok: host-side telemetry only
        error = PoisonJobError(job.id, job.key, reason)
        with self._lock:
            self._inflight.pop(job.key, None)
            self._quarantined[job.key] = reason
            self._metrics.quarantined += 1
            self._metrics.failed += 1
            if self._journal is not None:
                for seq in job.journal_seqs:
                    self._journal.record_quarantined(
                        seq, job.key, str(error), traceback=tb
                    )
            job._fail(error, now)

    def _finish_ok(self, job: Job, report) -> None:
        now = time.monotonic()  # wall-clock-ok: host-side telemetry only
        with self._lock:
            self._inflight.pop(job.key, None)
            job._resolve(report, now)
            self._metrics.run.record(job.run_s)
            self._metrics.executed += 1
            self._metrics.completed += 1

    def _finish_failed(self, job: Job, error: BaseException) -> None:
        now = time.monotonic()  # wall-clock-ok: host-side telemetry only
        with self._lock:
            self._inflight.pop(job.key, None)
            if self._journal is not None:
                for seq in job.journal_seqs:
                    self._journal.record_failed(seq, str(error))
            job._fail(error, now)
            self._metrics.failed += 1

    # -- heartbeat -----------------------------------------------------------
    def _heartbeat_digest(self) -> dict:
        """Small counter digest folded into the heartbeat document."""
        with self._lock:
            return {
                "queue_depth": self._queue.depth,
                "in_flight": len(self._inflight),
                "completed": self._metrics.completed,
                "failed": self._metrics.failed,
                "quarantined": self._metrics.quarantined,
            }

    def _beat(self, status: str) -> None:
        try:
            write_heartbeat(
                self._heartbeat_path, status, self._heartbeat_digest()
            )
        except OSError:  # pragma: no cover - a full disk must not kill us
            return
        self._last_heartbeat_s = time.monotonic()  # wall-clock-ok: host-side telemetry only

    def _heartbeat_loop(self) -> None:
        self._beat("serving")
        while not self._hb_stop.wait(self._heartbeat_interval_s):
            self._beat("serving")
