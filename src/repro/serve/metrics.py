"""Service-side observability: latency histograms and counters.

The experiment service keeps its own live metrics — queue depth,
in-flight jobs, admission/coalescing/cache counters, and wait/run
latency distributions — separate from the per-run cross-layer metrics
a :class:`~repro.engine.RunReport` carries.  Run metrics describe one
simulation; service metrics describe the *serving* behaviour across
many concurrent clients, which is what capacity planning needs.

Histograms use fixed log-spaced buckets so recording is O(log buckets),
allocation-free, and two snapshots are comparable regardless of what
latencies were observed in between.
"""

from __future__ import annotations

import bisect
from typing import List, Optional

__all__ = ["LatencyHistogram", "ServiceMetrics"]


class LatencyHistogram:
    """Fixed-bucket log-spaced latency histogram (seconds).

    Buckets double from ``lo`` upward; a sample beyond the last bound
    lands in the overflow bucket.  Percentiles are resolved to the
    upper bound of the bucket the rank falls in, clamped to the true
    observed maximum, so ``p99 <= max`` always holds.
    """

    def __init__(self, lo: float = 1e-6, buckets: int = 40):
        if lo <= 0 or buckets < 1:
            raise ValueError("histogram needs lo > 0 and buckets >= 1")
        self.bounds: List[float] = [lo * (2.0 ** i) for i in range(buckets)]
        self.counts: List[int] = [0] * (buckets + 1)  # + overflow
        self.count = 0
        self.total_s = 0.0
        self.min_s: Optional[float] = None
        self.max_s: Optional[float] = None

    def record(self, seconds: float) -> None:
        """Add one latency sample (negative samples clamp to zero)."""
        s = max(0.0, float(seconds))
        self.counts[bisect.bisect_left(self.bounds, s)] += 1
        self.count += 1
        self.total_s += s
        self.min_s = s if self.min_s is None else min(self.min_s, s)
        self.max_s = s if self.max_s is None else max(self.max_s, s)

    @property
    def mean_s(self) -> float:
        """Arithmetic mean of every recorded sample (0.0 when empty)."""
        return self.total_s / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``0 < q <= 1``) latency in seconds.

        Resolved to the containing bucket's upper bound, clamped to
        the observed maximum; 0.0 when no samples were recorded.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, int(q * self.count + 0.999999))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                bound = (
                    self.bounds[i]
                    if i < len(self.bounds)
                    else self.max_s or self.bounds[-1]
                )
                return min(bound, self.max_s if self.max_s is not None else bound)
        return self.max_s or 0.0  # pragma: no cover - defensive

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold another histogram's samples into this one, bucket-wise.

        Both histograms must share bucket geometry (same ``lo``, same
        bucket count) — true for every histogram the service family
        creates.  Merged percentiles are exact at bucket resolution:
        the same answer as recording both sample streams into one
        histogram, which is what fleet-level aggregation needs.
        """
        if self.bounds != other.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket geometry"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total_s += other.total_s
        if other.min_s is not None:
            self.min_s = (
                other.min_s
                if self.min_s is None
                else min(self.min_s, other.min_s)
            )
        if other.max_s is not None:
            self.max_s = (
                other.max_s
                if self.max_s is None
                else max(self.max_s, other.max_s)
            )
        return self

    @classmethod
    def from_snapshot(cls, snap: dict) -> "LatencyHistogram":
        """Rebuild a histogram from a :meth:`snapshot` dict.

        A snapshot carrying raw ``counts`` round-trips exactly; a
        digest-only snapshot (older writer) degrades gracefully — all
        mass lands in the overflow bucket, so count/mean/min/max stay
        exact and percentiles clamp to the observed maximum.
        """
        snap = snap or {}
        hist = cls(
            lo=float(snap.get("bucket_lo", 1e-6)),
            buckets=int(snap.get("buckets", 40)),
        )
        count = int(snap.get("count", 0))
        if count == 0:
            return hist
        counts = snap.get("counts")
        if isinstance(counts, list) and len(counts) == len(hist.counts):
            hist.counts = [int(c) for c in counts]
        else:
            hist.counts[-1] = count
        hist.count = count
        hist.total_s = float(
            snap.get("total_s", snap.get("mean_s", 0.0) * count)
        )
        hist.min_s = float(snap.get("min_s", 0.0))
        hist.max_s = float(snap.get("max_s", 0.0))
        return hist

    def snapshot(self) -> dict:
        """JSON-safe digest: count, mean/min/max, p50/p90/p99, plus the
        raw bucket counts so downstream aggregators (the fleet router)
        can merge histograms bucket-wise instead of averaging digests."""
        return {
            "count": self.count,
            "mean_s": self.mean_s,
            "min_s": self.min_s or 0.0,
            "max_s": self.max_s or 0.0,
            "p50_s": self.percentile(0.50),
            "p90_s": self.percentile(0.90),
            "p99_s": self.percentile(0.99),
            "total_s": self.total_s,
            "bucket_lo": self.bounds[0],
            "buckets": len(self.bounds),
            "counts": list(self.counts),
        }


class ServiceMetrics:
    """Live counters of one :class:`~repro.serve.ExperimentService`.

    All mutation happens under the service lock; a snapshot is a plain
    dict safe to serialize or diff.  ``submitted`` counts every
    ``submit()`` call and always equals
    ``accepted + coalesced + cache_hits + rejected + quarantine_hits``.

    The durability counters stay zero on a fault-free run: ``recovered``
    and ``journal_replays`` only move when a restart replays journaled
    work, ``quarantined``/``quarantine_hits`` when a poison spec trips
    the circuit breaker, ``deadline_misses`` when queued jobs expire,
    and ``batch_timeouts`` when the watchdog recycles a hung pool.
    """

    def __init__(self):
        self.submitted = 0
        self.accepted = 0
        self.rejected = 0
        self.coalesced = 0
        self.cache_hits = 0
        self.executed = 0
        self.completed = 0
        self.failed = 0
        self.requeued = 0
        self.batches = 0
        # durability / self-healing counters (0 on a fault-free run)
        self.recovered = 0
        self.quarantined = 0
        self.quarantine_hits = 0
        self.deadline_misses = 0
        self.batch_timeouts = 0
        self.journal_replays = 0
        self.peak_queue_depth = 0
        self.peak_in_flight = 0
        self.wait = LatencyHistogram()
        self.run = LatencyHistogram()

    def snapshot(self, queue_depth: int = 0, in_flight: int = 0) -> dict:
        """JSON-safe dict of every counter plus latency digests."""
        return {
            "queue_depth": queue_depth,
            "in_flight": in_flight,
            "peak_queue_depth": self.peak_queue_depth,
            "peak_in_flight": self.peak_in_flight,
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "completed": self.completed,
            "failed": self.failed,
            "requeued": self.requeued,
            "batches": self.batches,
            "recovered": self.recovered,
            "quarantined": self.quarantined,
            "quarantine_hits": self.quarantine_hits,
            "deadline_misses": self.deadline_misses,
            "batch_timeouts": self.batch_timeouts,
            "journal_replays": self.journal_replays,
            "wait": self.wait.snapshot(),
            "run": self.run.snapshot(),
        }
