"""The experiment service layer: queue, coalesce, batch, serve.

One long-running :class:`ExperimentService` front door multiplexes
many concurrent clients onto a shared pool of simulator workers:

* :mod:`repro.serve.queue`   — jobs + bounded fair-share priority queue
  (typed :class:`QueueFull` backpressure, :class:`DeadlineExceeded`
  and :class:`PoisonJobError` failures)
* :mod:`repro.serve.service` — coalescing, cache short-circuit,
  adaptive batching, crashed-worker requeue, deadlines, the poison-job
  quarantine circuit breaker, graceful drain
* :mod:`repro.serve.journal` — write-ahead job journal
  (``repro.job_journal/1``) behind crash recovery
* :mod:`repro.serve.health`  — liveness heartbeat file read by
  ``repro serve --status``
* :mod:`repro.serve.metrics` — live service counters and wait/run
  latency histograms
* :mod:`repro.serve.filejob` — file-based job directory protocol
  behind ``repro serve`` / ``repro submit``

Programmatic entry point: :meth:`repro.api.Session.serve`.
"""

from .filejob import (
    JOB_REQUEST_SCHEMA,
    JOB_RESULT_SCHEMA,
    SERVICE_METRICS_SCHEMA,
    serve_jobdir,
    submit_job,
    wait_result,
)
from .health import HEARTBEAT_SCHEMA, read_heartbeat, write_heartbeat
from .journal import JOB_JOURNAL_SCHEMA, JobJournal, JournalRecord, JournalState
from .metrics import LatencyHistogram, ServiceMetrics
from .queue import (
    DeadlineExceeded,
    Job,
    JobQueue,
    JobState,
    PoisonJobError,
    QueueFull,
)
from .service import ExperimentService

__all__ = [
    "ExperimentService",
    "Job",
    "JobQueue",
    "JobState",
    "QueueFull",
    "DeadlineExceeded",
    "PoisonJobError",
    "JobJournal",
    "JournalRecord",
    "JournalState",
    "LatencyHistogram",
    "ServiceMetrics",
    "read_heartbeat",
    "write_heartbeat",
    "serve_jobdir",
    "submit_job",
    "wait_result",
    "HEARTBEAT_SCHEMA",
    "JOB_JOURNAL_SCHEMA",
    "JOB_REQUEST_SCHEMA",
    "JOB_RESULT_SCHEMA",
    "SERVICE_METRICS_SCHEMA",
]
