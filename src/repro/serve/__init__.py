"""The experiment service layer: queue, coalesce, batch, serve.

One long-running :class:`ExperimentService` front door multiplexes
many concurrent clients onto a shared pool of simulator workers:

* :mod:`repro.serve.queue`   — jobs + bounded fair-share priority queue
  (typed :class:`QueueFull` backpressure)
* :mod:`repro.serve.service` — coalescing, cache short-circuit,
  adaptive batching, crashed-worker requeue, graceful drain
* :mod:`repro.serve.metrics` — live service counters and wait/run
  latency histograms
* :mod:`repro.serve.filejob` — file-based job directory protocol
  behind ``repro serve`` / ``repro submit``

Programmatic entry point: :meth:`repro.api.Session.serve`.
"""

from .filejob import (
    JOB_REQUEST_SCHEMA,
    JOB_RESULT_SCHEMA,
    SERVICE_METRICS_SCHEMA,
    serve_jobdir,
    submit_job,
    wait_result,
)
from .metrics import LatencyHistogram, ServiceMetrics
from .queue import Job, JobQueue, JobState, QueueFull
from .service import ExperimentService

__all__ = [
    "ExperimentService",
    "Job",
    "JobQueue",
    "JobState",
    "QueueFull",
    "LatencyHistogram",
    "ServiceMetrics",
    "serve_jobdir",
    "submit_job",
    "wait_result",
    "JOB_REQUEST_SCHEMA",
    "JOB_RESULT_SCHEMA",
    "SERVICE_METRICS_SCHEMA",
]
