"""Plain-text table/series rendering for benchmark reports."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["render_table", "render_series"]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    cols = [list(map(str, col)) for col in zip(headers, *rows)]
    widths = [max(len(v) for v in col) for col in cols]
    out: List[str] = []
    if title:
        out.append(title)
    sep = "-+-".join("-" * w for w in widths)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in rows:
        out.append(
            " | ".join(str(v).ljust(w) for v, w in zip(row, widths))
        )
    return "\n".join(out)


def render_series(
    x_label: str,
    xs: Sequence,
    series: dict,
    title: str = "",
    fmt: str = "{:.4g}",
) -> str:
    """Multi-column series table: one x column plus one column per curve."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append(
            [str(x)] + [fmt.format(series[name][i]) for name in series]
        )
    return render_table(headers, rows, title=title)
