"""Experiment runners shared by the benchmark suite and EXPERIMENTS.md."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..apps.xpic import Mode, RunResult, run_experiment, table2_setup
from ..hardware import build_deep_er_prototype
from ..perfmodel import parallel_efficiency

__all__ = ["Fig7Result", "Fig8Result", "run_fig7", "run_fig8", "FIG78_STEPS"]

#: Step count used for the headline runs; with the Table II workload
#: this puts absolute runtimes in the paper's tens-of-seconds range.
FIG78_STEPS = 500


@dataclass
class Fig7Result:
    """The three single-node runs of Fig 7."""

    runs: Dict[Mode, RunResult]

    @property
    def gain_vs_cluster(self) -> float:
        """C+B speedup over Cluster-only (paper: 1.28x)."""
        return (
            self.runs[Mode.CLUSTER].total_runtime
            / self.runs[Mode.CB].total_runtime
        )

    @property
    def gain_vs_booster(self) -> float:
        """C+B speedup over Booster-only (paper: 1.21x)."""
        return (
            self.runs[Mode.BOOSTER].total_runtime
            / self.runs[Mode.CB].total_runtime
        )

    @property
    def field_cluster_advantage(self) -> float:
        """Field-solver speedup of the Cluster node (paper: ~6x)."""
        return (
            self.runs[Mode.BOOSTER].fields_time
            / self.runs[Mode.CLUSTER].fields_time
        )

    @property
    def particle_booster_advantage(self) -> float:
        """Particle-solver speedup of the Booster node (paper: ~1.35x)."""
        return (
            self.runs[Mode.CLUSTER].particles_time
            / self.runs[Mode.BOOSTER].particles_time
        )


@dataclass
class Fig8Result:
    """The 3-mode x node-count scaling sweep of Fig 8."""

    node_counts: List[int]
    runs: Dict[Tuple[Mode, int], RunResult]

    def runtime(self, mode: Mode, n: int) -> float:
        """Total runtime of one (mode, node count) run."""
        return self.runs[(mode, n)].total_runtime

    def efficiency(self, mode: Mode, n: int) -> float:
        """Parallel efficiency T(1) / (n T(n)) — Fig 8's lower panel."""
        return parallel_efficiency(
            self.runtime(mode, 1), self.runtime(mode, n), n
        )

    def gain(self, baseline: Mode, n: int) -> float:
        """C+B speedup over a homogeneous baseline at n nodes per solver."""
        return self.runtime(baseline, n) / self.runtime(Mode.CB, n)


def run_fig7(steps: int = FIG78_STEPS) -> Fig7Result:
    """Run the three single-node experiments of Fig 7."""
    cfg = table2_setup(steps=steps)
    runs = {}
    for mode in Mode:
        machine = build_deep_er_prototype()
        runs[mode] = run_experiment(machine, mode, cfg, nodes_per_solver=1)
    return Fig7Result(runs=runs)


def run_fig8(
    steps: int = FIG78_STEPS, node_counts: Tuple[int, ...] = (1, 2, 4, 8)
) -> Fig8Result:
    """Run the full scaling sweep of Fig 8 (3 modes x node counts)."""
    cfg = table2_setup(steps=steps)
    runs = {}
    for mode in Mode:
        for n in node_counts:
            machine = build_deep_er_prototype()
            runs[(mode, n)] = run_experiment(
                machine, mode, cfg, nodes_per_solver=n
            )
    return Fig8Result(node_counts=list(node_counts), runs=runs)
