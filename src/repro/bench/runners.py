"""Experiment runners shared by the benchmark suite and EXPERIMENTS.md.

The Fig 7/8 runners are thin :class:`~repro.engine.ExperimentSpec`
sweeps over the unified engine: every run goes down the same
instrumented path, and the per-run :class:`~repro.engine.RunReport`
(cross-layer metrics, Chrome-trace export) rides along next to the
app-level timings the figures need.  Every runner sweeps through a
:class:`~repro.api.Session` (``session=`` injects one; the legacy
``engine``/``workers``/``cache`` keywords build one), so results are
bit-identical to a serial sweep at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..apps.xpic import Mode, RunResult
from ..engine import Engine, ExperimentSpec, RunReport
from ..perfmodel import parallel_efficiency


def _session(session, engine, workers, cache):
    """The Session a runner sweeps through (built from legacy kwargs
    when the caller did not inject one)."""
    if session is not None:
        return session
    from ..api import Session

    return Session(cache=cache, workers=workers, engine=engine)

__all__ = ["Fig7Result", "Fig8Result", "run_fig7", "run_fig8", "FIG78_STEPS"]

#: Step count used for the headline runs; with the Table II workload
#: this puts absolute runtimes in the paper's tens-of-seconds range.
FIG78_STEPS = 500


def experiment_spec(
    mode: Mode, steps: int, nodes_per_solver: int = 1, **kwargs
) -> ExperimentSpec:
    """The canonical Fig 7/8 spec: DEEP-ER preset, xPic, Table II."""
    return ExperimentSpec(
        preset="deep-er",
        app="xpic",
        mode=Mode(mode).value,
        steps=steps,
        nodes_per_solver=nodes_per_solver,
        **kwargs,
    )


@dataclass
class Fig7Result:
    """The three single-node runs of Fig 7."""

    runs: Dict[Mode, RunResult]
    reports: Dict[Mode, RunReport] = field(default_factory=dict)

    @property
    def gain_vs_cluster(self) -> float:
        """C+B speedup over Cluster-only (paper: 1.28x)."""
        return (
            self.runs[Mode.CLUSTER].total_runtime
            / self.runs[Mode.CB].total_runtime
        )

    @property
    def gain_vs_booster(self) -> float:
        """C+B speedup over Booster-only (paper: 1.21x)."""
        return (
            self.runs[Mode.BOOSTER].total_runtime
            / self.runs[Mode.CB].total_runtime
        )

    @property
    def field_cluster_advantage(self) -> float:
        """Field-solver speedup of the Cluster node (paper: ~6x)."""
        return (
            self.runs[Mode.BOOSTER].fields_time
            / self.runs[Mode.CLUSTER].fields_time
        )

    @property
    def particle_booster_advantage(self) -> float:
        """Particle-solver speedup of the Booster node (paper: ~1.35x)."""
        return (
            self.runs[Mode.CLUSTER].particles_time
            / self.runs[Mode.BOOSTER].particles_time
        )


@dataclass
class Fig8Result:
    """The 3-mode x node-count scaling sweep of Fig 8."""

    node_counts: List[int]
    runs: Dict[Tuple[Mode, int], RunResult]
    reports: Dict[Tuple[Mode, int], RunReport] = field(default_factory=dict)

    def runtime(self, mode: Mode, n: int) -> float:
        """Total runtime of one (mode, node count) run."""
        return self.runs[(mode, n)].total_runtime

    def efficiency(self, mode: Mode, n: int) -> float:
        """Parallel efficiency T(1) / (n T(n)) — Fig 8's lower panel."""
        return parallel_efficiency(
            self.runtime(mode, 1), self.runtime(mode, n), n
        )

    def gain(self, baseline: Mode, n: int) -> float:
        """C+B speedup over a homogeneous baseline at n nodes per solver."""
        return self.runtime(baseline, n) / self.runtime(Mode.CB, n)


def run_fig7(
    steps: int = FIG78_STEPS,
    engine: Optional[Engine] = None,
    workers: int = 1,
    fault_plan: Optional[dict] = None,
    mtbf_s: Optional[float] = None,
    cache=None,
    session=None,
) -> Fig7Result:
    """Run the three single-node experiments of Fig 7.

    ``fault_plan`` (a FaultPlan or its dict form) / ``mtbf_s`` inject
    the same fault schedule into every run — Fig 7 under failures.
    ``cache`` (a :class:`~repro.cache.ResultCache` or directory path)
    memoizes the runs content-addressed by spec.  ``session`` injects a
    ready :class:`~repro.api.Session` (the other engine/workers/cache
    keywords are then ignored)."""
    session = _session(session, engine, workers, cache)
    modes = list(Mode)
    sweep = session.sweep(
        [
            experiment_spec(mode, steps, fault_plan=fault_plan, mtbf_s=mtbf_s)
            for mode in modes
        ]
    )
    reports = dict(zip(modes, sweep.reports))
    return Fig7Result(
        runs={m: r.result_view for m, r in reports.items()}, reports=reports
    )


def run_fig8(
    steps: int = FIG78_STEPS,
    node_counts: Tuple[int, ...] = (1, 2, 4, 8),
    engine: Optional[Engine] = None,
    workers: int = 1,
    fault_plan: Optional[dict] = None,
    mtbf_s: Optional[float] = None,
    cache=None,
    session=None,
) -> Fig8Result:
    """Run the full scaling sweep of Fig 8 (3 modes x node counts).

    ``fault_plan`` / ``mtbf_s`` inject the same fault schedule into
    every run of the sweep; ``cache`` memoizes each run by spec;
    ``session`` injects a ready :class:`~repro.api.Session`."""
    session = _session(session, engine, workers, cache)
    keys = [(mode, n) for mode in Mode for n in node_counts]
    sweep = session.sweep(
        [
            experiment_spec(
                mode,
                steps,
                nodes_per_solver=n,
                fault_plan=fault_plan,
                mtbf_s=mtbf_s,
            )
            for mode, n in keys
        ]
    )
    reports = dict(zip(keys, sweep.reports))
    return Fig8Result(
        node_counts=list(node_counts),
        runs={k: r.result_view for k, r in reports.items()},
        reports=reports,
    )
