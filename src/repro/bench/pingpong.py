"""MPI ping-pong microbenchmark (regenerates Fig 3).

Measures end-to-end latency and bandwidth between node pairs with the
standard ping-pong pattern over the simulated ParaStation MPI, exactly
like the EXTOLL measurements of Fig 3 (CN-CN, BN-BN, CN-BN).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..hardware.machine import Machine
from ..mpi import Bytes, MPIRuntime

__all__ = [
    "PingPongPoint",
    "pingpong",
    "fig3_sizes_latency",
    "fig3_sizes_bandwidth",
    "fig3_series",
]


@dataclass(frozen=True)
class PingPongPoint:
    """One (message size, latency, bandwidth) measurement."""

    nbytes: int
    latency_s: float  # one-way time = round trip / 2
    bandwidth_bps: float


def fig3_sizes_latency() -> List[int]:
    """Fig 3 lower panel x-axis: 1 B .. 32 KiB, powers of two."""
    return [2**k for k in range(0, 16)]


def fig3_sizes_bandwidth() -> List[int]:
    """Fig 3 upper panel x-axis: 1 B .. 16 MiB, powers of two."""
    return [2**k for k in range(0, 25)]


def pingpong(
    machine: Machine,
    node_a: str,
    node_b: str,
    sizes: Sequence[int],
    repetitions: int = 4,
) -> List[PingPongPoint]:
    """Run ping-pong between two nodes for each message size."""
    rt = MPIRuntime(machine)
    results: Dict[int, float] = {}

    def app(ctx):
        comm = ctx.world
        peer = 1 - comm.rank
        for nbytes in sizes:
            t0 = ctx.sim.now
            for _ in range(repetitions):
                if comm.rank == 0:
                    yield from comm.send(Bytes(nbytes), dest=peer)
                    yield from comm.recv(source=peer)
                else:
                    yield from comm.recv(source=peer)
                    yield from comm.send(Bytes(nbytes), dest=peer)
            if comm.rank == 0:
                round_trip = (ctx.sim.now - t0) / repetitions
                results[nbytes] = round_trip / 2.0

    nodes = [machine.fabric.node(node_a), machine.fabric.node(node_b)]
    rt.run_app(app, nodes)
    return [
        PingPongPoint(
            nbytes=n,
            latency_s=results[n],
            bandwidth_bps=n / results[n] if results[n] > 0 else 0.0,
        )
        for n in sizes
    ]


def fig3_series(machine: Machine, sizes: Sequence[int]) -> Dict[str, List[PingPongPoint]]:
    """The three curves of Fig 3 on a fresh machine each."""
    return {
        "CN-CN": pingpong(machine, "cn00", "cn01", sizes),
        "BN-BN": pingpong(machine, "bn00", "bn01", sizes),
        "CN-BN": pingpong(machine, "cn00", "bn00", sizes),
    }
