"""Benchmark harness utilities: ping-pong, runners, table rendering."""

from .pingpong import (
    PingPongPoint,
    fig3_series,
    fig3_sizes_bandwidth,
    fig3_sizes_latency,
    pingpong,
)
from .runners import FIG78_STEPS, Fig7Result, Fig8Result, run_fig7, run_fig8
from .tables import render_series, render_table

__all__ = [
    "pingpong",
    "fig3_series",
    "fig3_sizes_latency",
    "fig3_sizes_bandwidth",
    "PingPongPoint",
    "run_fig7",
    "run_fig8",
    "Fig7Result",
    "Fig8Result",
    "FIG78_STEPS",
    "render_table",
    "render_series",
]
