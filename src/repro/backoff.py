"""One backoff implementation for every retry loop in the package.

Retry-with-backoff shows up at two very different layers of the stack:
the simulated MPI transport re-attempting a transfer over a failed
route (:class:`~repro.mpi.FaultTolerancePolicy`), and a real client
re-submitting to the experiment service after a typed
:class:`~repro.serve.queue.QueueFull` rejection.  Both need the same
three properties — geometric growth, an optional cap, and *optional
jitter that is deterministic under a seed* so tests and simulations
replay bit-identically — so both share this one helper instead of
growing drifting copies.

Two jitter shapes are supported:

* **proportional** (``jitter=f``): each exponential delay is scaled by
  a factor drawn uniformly from ``[1 - f, 1 + f]``.  With ``jitter=0``
  (the default) the sequence is exactly
  ``base_s * factor**attempt`` — byte-identical to the historical
  fixed backoff, which is what keeps zero-jitter simulations
  event-identical.
* **decorrelated** (``decorrelated=True``): the AWS-style scheme where
  each delay is drawn uniformly from ``[base_s, prev * factor]``,
  which spreads many colliding clients apart much faster than
  synchronized exponentials.  This is what the service clients use on
  :class:`~repro.serve.queue.QueueFull`.

``next_delay(floor_s=...)`` lets a caller honor a server-provided
retry-after hint: the computed delay never undercuts the floor (the
cap still wins, by design, so a hostile hint cannot stall a client
forever).
"""

from __future__ import annotations

import numpy as np
from typing import Optional

__all__ = ["ExponentialBackoff"]


class ExponentialBackoff:
    """Stateful backoff delay generator (seconds).

    Parameters
    ----------
    base_s, factor, cap_s
        Geometric schedule: attempt ``n`` waits ``base_s * factor**n``
        seconds, clamped to ``cap_s`` when given.
    jitter
        Proportional jitter fraction in ``[0, 1)``; each delay is
        multiplied by a uniform draw from ``[1 - jitter, 1 + jitter]``.
        ``0.0`` (default) disables jitter and makes the sequence exactly
        reproducible with no RNG draws at all.
    decorrelated
        Use decorrelated jitter instead: each delay is drawn uniformly
        from ``[base_s, prev_delay * factor]``.  Implies randomness, so
        pass a ``seed`` for deterministic tests.
    seed
        Seed for the private RNG stream.  Two instances with the same
        parameters and seed produce identical delay sequences — the
        determinism contract the simulated transport relies on.
    """

    def __init__(
        self,
        base_s: float = 1e-3,
        factor: float = 2.0,
        cap_s: Optional[float] = None,
        jitter: float = 0.0,
        decorrelated: bool = False,
        seed: Optional[int] = None,
    ):
        if base_s < 0:
            raise ValueError(f"base_s cannot be negative (got {base_s})")
        if factor < 1:
            raise ValueError(f"factor must be >= 1 (got {factor})")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1) (got {jitter})")
        if cap_s is not None and cap_s <= 0:
            raise ValueError(f"cap_s must be positive (got {cap_s})")
        self.base_s = base_s
        self.factor = factor
        self.cap_s = cap_s
        self.jitter = jitter
        self.decorrelated = decorrelated
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.attempt = 0
        self._prev: Optional[float] = None

    def reset(self) -> None:
        """Rewind to attempt zero (and re-seed the jitter stream)."""
        self._rng = np.random.default_rng(self.seed)
        self.attempt = 0
        self._prev = None

    def next_delay(self, floor_s: float = 0.0) -> float:
        """The next delay in seconds; advances the attempt counter.

        ``floor_s`` raises the result to at least that many seconds —
        the hook for honoring a server's ``retry_after_s`` hint.  The
        cap (when set) is applied last and wins over the floor.
        """
        if self.decorrelated:
            prev = self.base_s if self._prev is None else self._prev
            hi = max(self.base_s, prev * self.factor)
            delay = self._rng.uniform(self.base_s, hi)
        else:
            delay = self.base_s * self.factor ** self.attempt
            if self.jitter:
                delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        self.attempt += 1
        delay = max(delay, max(0.0, floor_s))
        if self.cap_s is not None:
            delay = min(delay, self.cap_s)
        self._prev = delay
        return delay

    def delays(self, n: int) -> list:
        """The next ``n`` delays as a list (advances state)."""
        return [self.next_delay() for _ in range(n)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "decorrelated" if self.decorrelated else "exponential"
        return (
            f"<ExponentialBackoff {kind} base={self.base_s} "
            f"factor={self.factor} jitter={self.jitter} seed={self.seed}>"
        )
