"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro run --mode cb --steps 100   # one instrumented run
    python -m repro sweep --modes cluster,booster,cb --nodes 1,2,4,8 \
        --workers 4                   # parallel sweep of independent runs
    python -m repro tune --steps 200  # autotune the C/B partition
    python -m repro serve --jobdir .jobs --workers 4   # experiment service
    python -m repro submit --jobdir .jobs --mode cb --steps 100 --wait
    python -m repro cache stats --dir .repro-cache   # manage the store
    python -m repro query --dir .repro-cache --where mode=C+B \
        --agg total_runtime          # filter + aggregate stored runs
    python -m repro table1            # Table I from the machine model
    python -m repro fig3              # fabric bandwidth/latency curves
    python -m repro fig7 [--steps N]  # single-node mode comparison
    python -m repro fig8 [--steps N]  # scaling sweep
    python -m repro report [FILE]     # benchmark digest, or one saved
                                      # Run / Sweep / Tune report JSON
    python -m repro faults --mtbf 3600 --horizon 7200 --targets bn00,bn01 \
        --out plan.json               # draw / inspect a fault plan
    python -m repro all               # everything above

``run``, ``fig7`` and ``fig8`` accept ``--fault-plan FILE`` and/or
``--mtbf SECONDS`` to execute under fault injection (checkpoint/restart
through the resilient driver; the report gains a resiliency section).
``run``, ``sweep``, ``tune``, ``serve``, ``fig7`` and ``fig8`` accept
``--cache DIR`` to memoize runs in a content-addressed result store —
a repeated spec loads its stored report instead of simulating again.

``serve`` runs the long-running experiment service over a file-based
job directory; ``submit`` drops requests into it (duplicate in-flight
specs coalesce onto one execution, cached specs are answered without
simulating).  Every experiment-running command routes through the
:class:`repro.api.Session` facade.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .api import Session
from .apps import available_apps
from .apps.xpic import Mode
from .autotune import TuneReport, TuneSpace
from .cache import ResultCache
from .engine import (
    MACHINE_PRESETS,
    Engine,
    ExperimentSpec,
    RunReport,
    SweepReport,
)
from .report import report_from_dict
from .sim import BACKENDS as SIM_BACKENDS
from .bench import (
    FIG78_STEPS,
    fig3_series,
    fig3_sizes_bandwidth,
    fig3_sizes_latency,
    render_series,
    render_table,
    run_fig7,
    run_fig8,
)
from .hardware import table1_rows
from .resiliency import FaultPlan

__all__ = ["main"]


def _preset_machine(preset: str = "deep-er"):
    """Build an unrun machine through the engine's preset path."""
    return Engine().build_machine(ExperimentSpec(preset=preset))


def cmd_table1(_args) -> str:
    rows = table1_rows(_preset_machine())
    return render_table(
        ["Feature", "Cluster", "Booster"],
        rows,
        title="Table I: Hardware configuration of the DEEP-ER prototype",
    )


def cmd_fig3(_args) -> str:
    lat = fig3_series(_preset_machine(), fig3_sizes_latency())
    bw = fig3_series(_preset_machine(), fig3_sizes_bandwidth())
    out = [
        render_series(
            "Bytes",
            fig3_sizes_bandwidth(),
            {k: [p.bandwidth_bps / 1e6 for p in v] for k, v in bw.items()},
            title="Fig 3 (top): MPI bandwidth [MByte/s]",
        ),
        "",
        render_series(
            "Bytes",
            fig3_sizes_latency(),
            {k: [p.latency_s * 1e6 for p in v] for k, v in lat.items()},
            title="Fig 3 (bottom): MPI latency [us]",
        ),
    ]
    return "\n".join(out)


def cmd_fig7(args) -> str:
    fk = _fault_kwargs(args)
    result = run_fig7(
        steps=args.steps,
        workers=getattr(args, "workers", 1),
        fault_plan=fk.get("fault_plan"),
        mtbf_s=fk.get("mtbf_s"),
        cache=getattr(args, "cache", None),
    )
    rows = []
    for mode in Mode:
        r = result.runs[mode]
        rows.append(
            (
                mode.value,
                f"{r.fields_time:.2f}",
                f"{r.particles_time:.2f}",
                f"{r.total_runtime:.2f}",
            )
        )
    table = render_table(
        ["Mode", "Fields [s]", "Particles [s]", "Total [s]"],
        rows,
        title=f"Fig 7: single-node runtimes ({args.steps} steps)",
    )
    table += (
        f"\n\nC+B gain vs Cluster: {result.gain_vs_cluster:.3f}x (paper 1.28x)"
        f"\nC+B gain vs Booster: {result.gain_vs_booster:.3f}x (paper 1.21x)"
        f"\nfield solver Cluster advantage: "
        f"{result.field_cluster_advantage:.2f}x (paper ~6x)"
        f"\nparticle solver Booster advantage: "
        f"{result.particle_booster_advantage:.2f}x (paper ~1.35x)"
    )
    return table


def cmd_fig8(args) -> str:
    fk = _fault_kwargs(args)
    result = run_fig8(
        steps=args.steps,
        workers=getattr(args, "workers", 1),
        fault_plan=fk.get("fault_plan"),
        mtbf_s=fk.get("mtbf_s"),
        cache=getattr(args, "cache", None),
    )
    ns = result.node_counts
    out = [
        render_series(
            "Nodes/solver",
            ns,
            {m.value: [result.runtime(m, n) for n in ns] for m in Mode},
            title=f"Fig 8 (top): runtime [s] ({args.steps} steps)",
            fmt="{:.2f}",
        ),
        "",
        render_series(
            "Nodes/solver",
            ns,
            {m.value: [result.efficiency(m, n) for n in ns] for m in Mode},
            title="Fig 8 (bottom): parallel efficiency",
            fmt="{:.3f}",
        ),
        "",
        f"C+B gain at 8 nodes: {result.gain(Mode.CLUSTER, 8):.3f}x vs Cluster "
        f"(paper 1.38x), {result.gain(Mode.BOOSTER, 8):.3f}x vs Booster "
        "(paper 1.34x)",
    ]
    return "\n".join(out)


def _fault_kwargs(args) -> dict:
    """Spec fields for the --fault-plan / --mtbf / --ckpt-interval flags."""
    out = {}
    if getattr(args, "fault_plan", None):
        out["fault_plan"] = FaultPlan.load(args.fault_plan).to_dict()
    if getattr(args, "mtbf", None) is not None:
        out["mtbf_s"] = args.mtbf
    if getattr(args, "ckpt_interval", None) is not None:
        out["ckpt_interval_s"] = args.ckpt_interval
    return out


def render_fault_plan(plan: FaultPlan) -> str:
    """Human-readable table of a fault plan's schedule."""
    rows = [
        (
            f"{ev.time_s:.3f}",
            ev.kind,
            ev.target if isinstance(ev.target, str) else "<->".join(ev.target),
            "-" if ev.duration_s is None else f"{ev.duration_s:.3f}",
            "-" if ev.factor is None else f"{ev.factor:.2f}",
        )
        for ev in plan
    ]
    meta = f"{len(plan)} events, seed={plan.seed}, mtbf_s={plan.mtbf_s}"
    return render_table(
        ["Time [s]", "Kind", "Target", "Duration [s]", "Factor"],
        rows,
        title=f"Fault plan ({meta})",
    )


def cmd_faults(args) -> str:
    """Draw a Poisson fault plan (or inspect an existing one)."""
    if args.file:
        plan = FaultPlan.load(args.file)
    else:
        if args.mtbf is None or args.horizon is None:
            raise ValueError(
                "faults needs either a plan FILE to inspect or "
                "--mtbf and --horizon (plus --targets) to generate one"
            )
        # node ids, or colon-separated endpoint pairs for link faults
        targets = [
            tuple(t.split(":")) if ":" in t else t
            for t in (s.strip() for s in args.targets.split(","))
            if t
        ]
        if not targets:
            raise ValueError("--targets needs at least one node id")
        plan = FaultPlan.poisson(
            mtbf_s=args.mtbf,
            horizon_s=args.horizon,
            targets=targets,
            seed=args.seed,
            kind=args.kind,
            duration_s=args.duration,
            factor=args.factor,
        )
    text = render_fault_plan(plan)
    if args.out:
        plan.save(args.out)
        text += f"\n\nfault plan written to {args.out}"
    return text


def render_run_report(report: RunReport) -> str:
    """Human-readable digest of one RunReport."""
    spec = report.spec
    rows = [
        ("app / mode", f"{spec.get('app')} / {report.result.get('mode')}"),
        ("preset", str(spec.get("preset"))),
        ("steps", str(report.result.get("steps"))),
        ("nodes/solver", str(report.result.get("nodes_per_solver"))),
        ("total runtime [s]", f"{report.total_runtime:.4f}"),
    ]
    if report.result.get("app") == "xpic":
        rows += [
            ("fields time [s]", f"{report.fields_time:.4f}"),
            ("particles time [s]", f"{report.particles_time:.4f}"),
        ]
    rows += [
        ("comm overhead", f"{report.comm_overhead_fraction:.2%}"),
        ("network bytes", str(report.network.get("total_bytes", 0))),
        ("network messages", str(report.network.get("total_messages", 0))),
        ("sim events", str(report.sim.get("events_processed", 0))),
        ("events/sec", f"{report.sim.get('events_per_sec', 0.0):,.0f}"),
    ]
    out = [render_table(["Metric", "Value"], rows, title="Run report")]
    links = report.network.get("links", {})
    if links:
        out.append("")
        out.append(
            render_table(
                ["Link", "Bytes", "Messages", "Stall [s]"],
                [
                    (k, str(m["bytes"]), str(m["messages"]),
                     f"{m['stall_time_s']:.4f}")
                    for k, m in sorted(links.items())
                ],
                title="Per-link traffic",
            )
        )
    res = report.resiliency
    if res:
        injected = res.get("faults", {}).get("injected", {})
        transport = res.get("transport", {})
        ckpts = res.get("checkpoints", {})
        rows = [
            ("faults injected",
             ", ".join(f"{k}={v}" for k, v in injected.items() if v) or "none"),
            ("transport retries",
             f"{transport.get('retries', 0)} "
             f"(backoff {transport.get('backoff_time_s', 0.0):.4f} s)"),
            ("checkpoints",
             ", ".join(f"{k}={v}" for k, v in ckpts.items() if v) or "none"),
            ("ckpt interval [s]",
             "-" if res.get("ckpt_interval_s") is None
             else f"{res['ckpt_interval_s']:.3f}"),
            ("restarts", str(res.get("restarts", 0))),
            ("lost work [s]", f"{res.get('lost_work_s', 0.0):.4f}"),
            ("restart time [s]", f"{res.get('restart_time_s', 0.0):.4f}"),
            ("degraded mode", str(res.get("degraded_mode", False))),
            ("epochs", str(res.get("epochs", 1))),
        ]
        out.append("")
        out.append(render_table(["Metric", "Value"], rows, title="Resiliency"))
    mal = report.malleability
    if mal:
        rows = [
            ("initial partition", str(mal.get("initial_label", "-"))),
            ("final partition", str(mal.get("final_label", "-"))),
            ("recoveries", str(mal.get("recoveries", 0))),
            ("re-partitions", str(mal.get("repartitions_count", 0))),
            ("time to recover [s]",
             f"{mal.get('time_to_recover_s', 0.0):.4f}"),
            ("post-fault steps/s",
             f"{mal.get('post_fault_steps_per_s', 0.0):.2f}"),
            ("re-tune cache hits", str(mal.get("retune_memo_hits", 0))),
        ]
        out.append("")
        out.append(
            render_table(["Metric", "Value"], rows, title="Malleability")
        )
        events = mal.get("repartitions", [])
        if events:
            out.append("")
            out.append(
                render_table(
                    ["t [s]", "From", "To", "Restart step",
                     "Candidates", "Recover [s]"],
                    [
                        (f"{e.get('time_s', 0.0):.3f}",
                         str(e.get("from_label", "-")),
                         str(e.get("to_label", "-")),
                         str(e.get("restart_step") or 0),
                         str(e.get("candidates", 0)),
                         f"{e.get('recover_s', 0.0):.4f}")
                        for e in events
                    ],
                    title="Re-partition events",
                )
            )
    comms = report.mpi.get("communicators", {})
    if comms:
        out.append("")
        out.append(
            render_table(
                ["Communicator", "p2p msgs", "p2p bytes",
                 "coll msgs", "coll bytes"],
                [
                    (k, str(c["p2p_messages"]), str(c["p2p_bytes"]),
                     str(c["coll_messages"]), str(c["coll_bytes"]))
                    for k, c in sorted(comms.items())
                ],
                title="Per-communicator traffic",
            )
        )
    return "\n".join(out)


def render_cache_stats(stats: dict, title: str = "Result cache") -> str:
    """Human-readable table of one cache's store + session counters."""
    rows = [
        ("store", stats.get("root", "-")),
        ("entries", str(stats.get("entries", 0))),
        ("stored bytes", f"{stats.get('stored_bytes', 0):,}"),
        ("hits (memory / disk)",
         f"{stats.get('hits', 0)} ({stats.get('lru_hits', 0)} / "
         f"{stats.get('disk_hits', 0)})"),
        ("misses", str(stats.get("misses", 0))),
        ("LRU tier (held / capacity)",
         f"{stats.get('lru_entries', 0)} / {stats.get('lru_capacity', 0)}"),
        ("bytes read", f"{stats.get('bytes_read', 0):,}"),
        ("bytes written", f"{stats.get('bytes_written', 0):,}"),
    ]
    return render_table(["Metric", "Value"], rows, title=title)


def _spec_from_args(args) -> ExperimentSpec:
    """Build the ExperimentSpec the run/submit spec flags describe."""
    return ExperimentSpec(
        preset=args.preset,
        app=args.app,
        mode=args.mode,
        steps=args.steps,
        nodes_per_solver=args.nodes,
        overlap=not args.no_overlap,
        swap_placement=args.swap_placement,
        seed=args.seed,
        trace=getattr(args, "trace", False)
        or bool(getattr(args, "chrome_trace", None)),
        sim_backend=getattr(args, "sim_backend", None),
        malleability=(
            {"enabled": True}
            if getattr(args, "malleable", False)
            else None
        ),
        **_fault_kwargs(args),
    )


def cmd_run(args) -> str:
    """Run one experiment through a Session and print its report."""
    spec = _spec_from_args(args)
    session = Session(cache=getattr(args, "cache", None))
    cache = session.cache
    report = session.run(spec)
    if args.json:
        report.save(args.json)
    if args.chrome_trace:
        report.save_chrome_trace(args.chrome_trace)
    text = render_run_report(report)
    if cache is not None:
        text += "\n\n" + render_cache_stats(cache.stats())
    notes = []
    if cache is not None:
        notes.append(
            "result cache: hit (report loaded, nothing simulated)"
            if cache.hits
            else "result cache: miss (report stored for next time)"
        )
    if args.json:
        notes.append(f"report JSON written to {args.json}")
    if args.chrome_trace:
        notes.append(f"Chrome trace written to {args.chrome_trace}")
    if notes:
        text += "\n\n" + "\n".join(notes)
    return text


def cmd_validate(args) -> str:
    from .validate import render_claims, validate_claims

    return render_claims(
        validate_claims(steps=args.steps, workers=getattr(args, "workers", 1))
    )


def render_sweep_report(sweep: SweepReport, title: str = "") -> str:
    """Human-readable digest of one SweepReport (the one sweep-table
    renderer: ``repro sweep`` and ``repro report FILE`` both use it)."""
    rows = [
        (
            r.result.get("mode", "-"),
            str(r.result.get("nodes_per_solver", "-")),
            f"{r.total_runtime:.4f}",
            f"{r.comm_overhead_fraction:.2%}",
            str(r.sim.get("events_processed", 0)),
        )
        for r in sweep.reports
    ]
    out = [
        render_table(
            ["Mode", "Nodes/solver", "Total [s]", "Comm overhead", "Events"],
            rows,
            title=title
            or (
                f"Sweep: {len(sweep)} runs, {sweep.workers} worker"
                f"{'s' if sweep.workers != 1 else ''}"
            ),
        )
    ]
    m = sweep.merged_metrics()
    out.append(
        f"\n{m['runs']} runs in {sweep.host_wall_s:.2f} s host wall-clock — "
        f"{m['sim_events']:,} events, {m['network_messages']:,} messages "
        f"({m['fast_transfers']:,} fast / {m['slow_transfers']:,} queued "
        f"transfers), {m['network_bytes']:,} bytes on the fabric"
    )
    return "\n".join(out)


def cmd_sweep(args) -> str:
    """Run a cross product of modes x node counts through a Session."""
    try:
        modes = [m.strip() for m in args.modes.split(",") if m.strip()]
        nodes = [int(n) for n in args.nodes.split(",") if n.strip()]
    except ValueError as exc:
        raise ValueError(f"bad sweep axis: {exc}") from None
    if not modes or not nodes:
        raise ValueError("sweep needs at least one mode and one node count")
    session = Session(
        cache=getattr(args, "cache", None),
        workers=args.workers,
        sim_backend=getattr(args, "sim_backend", None),
    )
    specs = session.specs(
        base=dict(
            preset=args.preset,
            app=args.app,
            steps=args.steps,
            seed=args.seed,
        ),
        mode=modes,
        nodes_per_solver=nodes,
    )
    cache = session.cache
    sweep = session.sweep(specs)
    if args.json:
        sweep.save(args.json)
    out = [
        render_sweep_report(
            sweep,
            title=(
                f"Sweep: {args.app} on {args.preset}, {args.steps} steps "
                f"({len(specs)} runs, {sweep.workers} worker"
                f"{'s' if sweep.workers != 1 else ''})"
            ),
        )
    ]
    if cache is not None:
        stats = cache.stats()
        out.append(
            f"result cache: {stats['hits']} hit(s), {stats['misses']} "
            f"miss(es), {stats['entries']} stored entr"
            f"{'y' if stats['entries'] == 1 else 'ies'}"
        )
    if args.json:
        out.append(f"sweep report JSON written to {args.json}")
    return "\n".join(out)


def render_report(report) -> str:
    """Render any registered report type, dispatching on its class.

    The one renderer behind ``repro report FILE``: RunReport,
    SweepReport, and TuneReport documents all come through here.
    """
    if isinstance(report, SweepReport):
        return render_sweep_report(report)
    if isinstance(report, TuneReport):
        return render_tune_report(report)
    if isinstance(report, RunReport):
        return render_run_report(report)
    raise ValueError(
        f"no renderer for report type {type(report).__name__}"
    )


def cmd_report(args) -> str:
    """Render any saved schema-tagged report, or compose archived
    benchmark tables."""
    import json as _json
    import pathlib

    if getattr(args, "file", None):
        doc = _json.loads(pathlib.Path(args.file).read_text())
        return render_report(report_from_dict(doc))

    results = pathlib.Path("benchmarks/_results")
    if not results.is_dir():
        # fall back to the repository the package was installed from
        repo_root = pathlib.Path(__file__).resolve().parents[2]
        results = repo_root / "benchmarks" / "_results"
    if not results.is_dir():
        return (
            "no archived results found — run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    order = [
        "table1", "fig3_latency", "fig3_bandwidth", "table2", "fig7",
        "fig8_runtime", "fig8_efficiency", "fig8_gains",
    ]
    files = sorted(
        results.glob("*.txt"),
        key=lambda p: (order.index(p.stem) if p.stem in order else 99, p.stem),
    )
    parts = ["# Benchmark results", ""]
    for path in files:
        parts.append(f"## {path.stem}")
        parts.append("")
        parts.append("```")
        parts.append(path.read_text().rstrip())
        parts.append("```")
        parts.append("")
    return "\n".join(parts)


def render_tune_report(report: TuneReport) -> str:
    """Human-readable digest of one TuneReport."""
    out = []
    for g, gen in enumerate(report.generations):
        rows = [
            (
                e["label"],
                f"{e['predicted_s']:.4f}",
                f"{e['measured_s']:.4f}",
            )
            for e in gen["evaluated"]
        ]
        out.append(
            render_table(
                ["Partition", "Predicted [s]", "Measured [s]"],
                rows,
                title=(
                    f"Generation {g + 1}/{len(report.generations)} "
                    f"({gen['steps']} steps, {len(rows)} candidates)"
                ),
            )
        )
        out.append("")
    best = report.best_config
    lines = [
        f"best partition: {best.label()}  "
        f"({report.best_runtime_s:.4f} s at {report.steps} steps)",
        f"searched {report.candidates_considered} candidates with "
        f"{report.evaluations} measured runs",
        f"model-vs-measured error (final generation): "
        f"{report.model.get('mean_abs_rel_err', 0.0):.1%}",
    ]
    if report.baseline:
        lines.append(
            f"hand-coded {report.baseline['label']}: "
            f"{report.baseline['measured_s']:.4f} s -> tuned speedup "
            f"{report.speedup_vs_baseline:.3f}x"
        )
    out.append("\n".join(lines))
    if report.cache:
        out.append("")
        out.append(render_cache_stats(report.cache))
    return "\n".join(out)


def cmd_tune(args) -> str:
    """Autotune the Cluster/Booster partition for the xPic workload."""
    try:
        node_counts = tuple(
            int(n) for n in args.nodes.split(",") if n.strip()
        )
    except ValueError as exc:
        raise ValueError(f"bad --nodes list: {exc}") from None
    space = TuneSpace(node_counts=node_counts)
    session = Session(
        cache=args.cache,
        workers=args.workers,
        sim_backend=getattr(args, "sim_backend", None),
    )
    report = session.tune(
        space=space,
        nested=getattr(args, "nested", False),
        steps=args.steps,
        preset=args.preset,
        generations=args.generations,
        population=args.population,
        eta=args.eta,
        min_steps=args.min_steps,
        seed=args.seed,
        baseline=not args.no_baseline,
    )
    text = render_tune_report(report)
    if args.json:
        report.save(args.json)
        text += f"\n\ntune report JSON written to {args.json}"
    return text


def render_service_metrics(stats: dict, title: str = "Experiment service") -> str:
    """Human-readable table of one service metrics snapshot."""
    wait = stats.get("wait", {})
    run = stats.get("run", {})

    def _lat(h: dict) -> str:
        if not h.get("count"):
            return "-"
        return (
            f"n={h['count']} p50={h.get('p50_s', 0.0) * 1e3:.1f}ms "
            f"p90={h.get('p90_s', 0.0) * 1e3:.1f}ms "
            f"p99={h.get('p99_s', 0.0) * 1e3:.1f}ms"
        )

    rows = [
        ("submitted", str(stats.get("submitted", 0))),
        ("accepted", str(stats.get("accepted", 0))),
        ("coalesced", str(stats.get("coalesced", 0))),
        ("cache hits", str(stats.get("cache_hits", 0))),
        ("rejected (queue full)", str(stats.get("rejected", 0))),
        ("executed / completed / failed",
         f"{stats.get('executed', 0)} / {stats.get('completed', 0)} / "
         f"{stats.get('failed', 0)}"),
        ("requeued (worker crash)", str(stats.get("requeued", 0))),
        ("batches", str(stats.get("batches", 0))),
        ("recovered from journal", str(stats.get("recovered", 0))),
        ("journal replays", str(stats.get("journal_replays", 0))),
        ("quarantined (poison specs)",
         f"{stats.get('quarantined', 0)} "
         f"(+{stats.get('quarantine_hits', 0)} short-circuited)"),
        ("deadline misses", str(stats.get("deadline_misses", 0))),
        ("batch timeouts (watchdog)", str(stats.get("batch_timeouts", 0))),
        ("heartbeat age", f"{stats.get('heartbeat_age_s', 0.0):.1f}s"),
        ("queue depth (now / peak)",
         f"{stats.get('queue_depth', 0)} / "
         f"{stats.get('peak_queue_depth', 0)}"),
        ("in flight (now / peak)",
         f"{stats.get('in_flight', 0)} / {stats.get('peak_in_flight', 0)}"),
        ("wait latency", _lat(wait)),
        ("run latency", _lat(run)),
    ]
    return render_table(["Metric", "Value"], rows, title=title)


def render_serve_status(jobdir, stale_after_s: float = 30.0):
    """One-shot liveness/metrics report of a served job directory.

    Returns ``(text, exit_code)``: code 1 when the directory claims a
    serving process that is stale — its pid is gone, or its last beat
    is older than ``stale_after_s`` — so scripts and monitors can
    alert on ``repro serve --status`` without parsing the text.  A
    directory that never served, or whose service stopped cleanly, is
    not stale (code 0).
    """
    import json
    from pathlib import Path

    from .serve import read_heartbeat

    jobdir = Path(jobdir).expanduser()
    lines = [f"service status for {jobdir}:"]
    stale = False
    hb = read_heartbeat(jobdir / "heartbeat.json")
    if hb is None:
        lines.append(
            "  heartbeat: none found (service never ran here, or "
            "predates durability)"
        )
    else:
        liveness = "alive" if hb["alive"] else "DEAD"
        if hb.get("status") == "stopped":
            liveness = "stopped cleanly"
        else:
            stale = (not hb["alive"]) or hb["age_s"] > stale_after_s
        if stale:
            liveness += f" (STALE: threshold {stale_after_s:g}s)"
        lines.append(
            f"  heartbeat: {hb.get('status', '?')} — pid {hb.get('pid')} "
            f"{liveness}, last beat {hb['age_s']:.1f}s ago"
        )
        lines.append(
            f"  work: {hb.get('queue_depth', 0)} queued, "
            f"{hb.get('in_flight', 0)} in flight, "
            f"{hb.get('completed', 0)} completed, "
            f"{hb.get('failed', 0)} failed, "
            f"{hb.get('quarantined', 0)} quarantined"
        )
    journal = jobdir / "journal.jsonl"
    if journal.exists():
        from .serve import JobJournal

        stats = JobJournal(journal).replay().stats()
        lines.append(
            f"  journal: {stats['records']} record(s), "
            f"{stats['unresolved']} unresolved, "
            f"{stats['quarantined']} quarantined key(s), "
            f"{stats['dropped_lines']} torn line(s)"
        )
    try:
        metrics = json.loads((jobdir / "metrics.json").read_text())
    except (OSError, ValueError):
        metrics = None
    if metrics is not None:
        lines.append("")
        lines.append(
            render_service_metrics(
                metrics, title=f"Last metrics snapshot ({jobdir})"
            )
        )
    return "\n".join(lines), (1 if stale else 0)


def cmd_serve(args) -> str:
    """Run the experiment service over a file-based job directory."""
    from pathlib import Path

    from .serve import serve_jobdir

    if getattr(args, "status", False):
        return render_serve_status(
            args.jobdir,
            stale_after_s=getattr(args, "stale_after_s", None) or 30.0,
        )
    if getattr(args, "sim_backend", None):
        # submitted specs carry their own sim_backend; this sets the
        # default for the ones that do not (workers inherit the env)
        import os

        from .sim import BACKEND_ENV_VAR

        os.environ[BACKEND_ENV_VAR] = args.sim_backend
    session = Session(
        cache=getattr(args, "cache", None),
        workers=args.workers,
        sim_backend=getattr(args, "sim_backend", None),
    )
    jobdir = Path(args.jobdir).expanduser()
    durable = not getattr(args, "no_journal", False)
    service = session.serve(
        max_queue=args.max_queue,
        autostart=not args.once,
        journal=(jobdir / "journal.jsonl") if durable else None,
        heartbeat=(jobdir / "heartbeat.json") if durable else None,
        deadline_s=getattr(args, "deadline", None),
        batch_timeout_s=getattr(args, "batch_timeout", None),
    )
    try:
        stats = serve_jobdir(
            args.jobdir,
            service=service,
            poll_s=args.poll,
            max_seconds=args.max_seconds,
            once=args.once,
            log=None if args.quiet else (lambda msg: print(msg, flush=True)),
        )
    finally:
        service.shutdown(drain=True)
    return render_service_metrics(
        stats, title=f"Experiment service ({args.jobdir})"
    )


def cmd_submit(args) -> str:
    """Submit one experiment request to a running service's job dir."""
    from .serve import submit_job, wait_result

    spec = _spec_from_args(args)
    job_id = submit_job(
        args.jobdir,
        spec,
        priority=args.priority,
        client=args.client,
        deadline_s=getattr(args, "deadline", None),
    )
    if not args.wait:
        return f"submitted {job_id} to {args.jobdir}"
    wait_timeout = getattr(args, "wait_timeout", None)
    if wait_timeout is None:
        wait_timeout = args.timeout
    result = wait_result(args.jobdir, job_id, timeout=wait_timeout)
    lines = [
        f"job {job_id}: {result['status']}"
        + (" (cache hit)" if result.get("cache_hit") else "")
        + (" (coalesced)" if result.get("coalesced") else "")
    ]
    if result["status"] == "done":
        report = RunReport.from_dict(result["report"])
        if args.json:
            report.save(args.json)
            lines.append(f"report JSON written to {args.json}")
        lines.append("")
        lines.append(render_run_report(report))
    else:
        lines.append(f"error: {result.get('error')}")
    return "\n".join(lines)


def render_fleet_status(metrics: dict):
    """Render one aggregated fleet metrics document.

    Returns ``(text, exit_code)``: code 1 when the fleet-wide ledger
    invariant (``submitted == accepted + coalesced + cache_hits +
    rejected + quarantine_hits``) does not hold in the merged
    snapshot, so scripts can alert on ``repro fleet status``.
    """
    from .fleet import invariant_holds

    fleet = metrics.get("fleet", {})
    router = metrics.get("router", {})
    lines = [
        render_service_metrics(
            fleet,
            title=f"Fleet ({fleet.get('shards', 0)} live shard(s))",
        )
    ]
    shares = router.get("ring_shares", {})
    for name, snap in sorted((metrics.get("shards") or {}).items()):
        share = shares.get(name)
        title = f"Shard {name}" + (
            f" — ring share {share:.1%}" if share is not None else ""
        )
        lines.append("")
        lines.append(render_service_metrics(snap, title=title))
    rows = [
        ("routed (sticky / stolen)",
         f"{router.get('routed', 0)} ({router.get('sticky_routed', 0)} / "
         f"{router.get('stolen', 0)})"),
        ("stolen results synced home", str(router.get("synced", 0))),
        ("rejected (shard queue full)",
         str(router.get("rejected_full", 0))),
        ("shard deaths / restarts",
         f"{router.get('shard_deaths', 0)} / {router.get('restarts', 0)}"),
        ("ring rebalances", str(router.get("rebalanced", 0))),
        ("rerouted jobs", str(router.get("rerouted_jobs", 0))),
        ("outstanding / in-flight keys",
         f"{router.get('outstanding', 0)} / "
         f"{router.get('inflight_keys', 0)}"),
        ("shards live / total",
         f"{router.get('shards_live', 0)} / "
         f"{router.get('shards_total', 0)}"),
    ]
    lost = router.get("shards_lost") or []
    if lost:
        rows.append(("shards lost (ring rebalanced)", ", ".join(lost)))
    lines.append("")
    lines.append(render_table(["Metric", "Value"], rows, title="Router"))
    lines.append("")
    if invariant_holds(fleet):
        lines.append(
            "fleet ledger: submitted == accepted + coalesced + cache hits "
            "+ rejected + quarantine hits (holds)"
        )
        return "\n".join(lines), 0
    lines.append(
        "fleet ledger VIOLATION: submitted != accepted + coalesced + "
        "cache hits + rejected + quarantine hits"
    )
    return "\n".join(lines), 1


def _cmd_fleet_serve(args):
    """Boot N shards + router + TCP front end; serve until stopped."""
    import time
    from pathlib import Path

    from .fleet import FleetFrontEnd, FleetRouter, LocalShard, ProcessShard

    root = Path(args.root).expanduser()
    shards = []
    for i in range(args.shards):
        name = f"shard-{i:02d}"
        cls = ProcessShard if args.process else LocalShard
        shards.append(
            cls(
                name,
                root / name,
                workers=args.workers,
                max_queue=args.max_queue,
            )
        )
    router = FleetRouter(shards, stale_after_s=args.stale_after_s)
    router.start()
    front = FleetFrontEnd(router, host=args.host, port=args.port).start()
    if not args.quiet:
        kind = "process" if args.process else "in-process"
        print(
            f"fleet: {args.shards} {kind} shard(s) under {root}",
            flush=True,
        )
        print(f"fleet: serving on {front.address}", flush=True)
    try:
        deadline = (
            None
            if args.max_seconds is None
            else time.monotonic() + args.max_seconds  # wall-clock-ok: CLI serving bound
        )
        while deadline is None or time.monotonic() < deadline:  # wall-clock-ok: CLI serving bound
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        front.stop()
        router.drain(timeout=30.0)
        snapshot = router.metrics_snapshot()
        router.shutdown(drain=False)
    return render_fleet_status(snapshot)


def _cmd_fleet_submit(args):
    """Submit one spec to a running fleet front end and render it."""
    from .fleet import FleetClient, FleetClientError

    spec = _spec_from_args(args)
    try:
        with FleetClient(args.address, timeout_s=args.timeout) as client:
            job = client.submit(
                spec,
                priority=args.priority,
                client=args.client,
                deadline_s=getattr(args, "deadline", None),
            )
    except FleetClientError as exc:
        raise ValueError(f"fleet submit failed: {exc}") from exc
    except OSError as exc:
        raise ValueError(
            f"cannot reach fleet at {args.address}: {exc}"
        ) from exc
    flags = (
        (" (cache hit)" if job.cache_hit else "")
        + (" (coalesced)" if job.coalesced else "")
        + (" (stolen)" if job.stolen else "")
    )
    lines = [
        f"fleet job {job.id} on shard {job.shard}: "
        f"{job.payload.get('status')}{flags}"
    ]
    error = job.exception()
    if error is not None:
        lines.append(f"error: {error}")
        return "\n".join(lines), 1
    report = job.result()
    if args.json:
        report.save(args.json)
        lines.append(f"report JSON written to {args.json}")
    lines.append("")
    lines.append(render_run_report(report))
    return "\n".join(lines)


def _cmd_fleet_status(args):
    """Fetch + render the aggregated metrics of a running fleet."""
    from .fleet import FleetClient, FleetClientError

    try:
        with FleetClient(
            args.address, timeout_s=args.timeout, max_attempts=1
        ) as client:
            metrics = client.status()
    except FleetClientError as exc:
        raise ValueError(f"fleet status failed: {exc}") from exc
    except OSError as exc:
        raise ValueError(
            f"cannot reach fleet at {args.address}: {exc}"
        ) from exc
    return render_fleet_status(metrics)


def cmd_fleet(args):
    """Fleet verbs: serve N shards behind a router, submit, status."""
    if args.verb == "serve":
        return _cmd_fleet_serve(args)
    if args.verb == "submit":
        return _cmd_fleet_submit(args)
    return _cmd_fleet_status(args)


def cmd_cache(args) -> str:
    """Manage a result store: stats, prune, verify, export, import."""
    cache = ResultCache(args.dir)
    if args.verb == "stats":
        return render_cache_stats(cache.stats())
    if args.verb == "prune":
        outcome = cache.prune(
            max_bytes=args.max_bytes,
            policy=args.policy,
            max_age_s=args.max_age_s,
        )
        return (
            f"pruned {outcome['removed']} entr"
            f"{'y' if outcome['removed'] == 1 else 'ies'} "
            f"({outcome['freed_bytes']:,} bytes freed, "
            f"{outcome['kept']} kept, policy {outcome['policy']})"
        )
    if args.verb == "export":
        if not args.out:
            raise ValueError("cache export needs --out FILE")
        outcome = cache.export_bundle(args.out, where=args.where or None)
        return (
            f"exported {outcome['exported']} entr"
            f"{'y' if outcome['exported'] == 1 else 'ies'} "
            f"({outcome['bytes']:,} bytes) to {outcome['path']}"
        )
    if args.verb == "import":
        if not args.file:
            raise ValueError("cache import needs --file BUNDLE")
        outcome = cache.import_bundle(args.file)
        return (
            f"imported {outcome['imported']} entr"
            f"{'y' if outcome['imported'] == 1 else 'ies'}, "
            f"{outcome['coalesced']} already present (coalesced), "
            f"{outcome['skipped_salt']} skipped (foreign salt)"
        )
    # verify
    outcome = cache.verify(repair=args.repair)
    idx = outcome["index"]
    lines = [
        f"{outcome['ok']} entr{'y' if outcome['ok'] == 1 else 'ies'} ok, "
        f"{len(outcome['corrupt'])} corrupt, "
        f"{len(outcome['mismatched'])} key-mismatched; index "
        + ("STALE" if idx["stale"] else "consistent")
    ]
    for name in outcome["corrupt"]:
        lines.append(f"  corrupt: {name}")
    for name in outcome["mismatched"]:
        lines.append(f"  mismatched: {name}")
    for key in idx["unindexed_blobs"]:
        lines.append(f"  unindexed blob: {key}")
    for key in idx["dangling_rows"]:
        lines.append(f"  dangling index row: {key}")
    if idx["dropped_lines"]:
        lines.append(f"  torn/invalid index lines: {idx['dropped_lines']}")
    if args.repair:
        lines.append(f"removed {outcome['removed']} bad entr"
                     f"{'y' if outcome['removed'] == 1 else 'ies'}; "
                     "index rebuilt from blobs")
    return "\n".join(lines)


def cmd_query(args) -> str:
    """Filter + aggregate stored runs from the store's columnar index."""
    cache = ResultCache(args.dir)
    fields = [f.strip() for f in (args.fields or "").split(",") if f.strip()]
    rows = cache.query(
        where=args.where or None, fields=fields, limit=args.limit
    )
    shown = [
        "key", "app", "mode", "preset", "steps", "nodes_per_solver",
        "total_runtime",
    ] + [f for f in fields if f not in (
        "key", "app", "mode", "preset", "steps", "nodes_per_solver",
        "total_runtime",
    )]

    def _cell(v) -> str:
        if v is None:
            return "-"
        if isinstance(v, float):
            return f"{v:.4f}"
        return str(v)

    table_rows = [
        tuple(
            (r["key"][:10] if c == "key" else _cell(r.get(c)))
            for c in shown
        )
        for r in rows
    ]
    where_label = " ".join(args.where) if args.where else "all runs"
    out = [
        render_table(
            shown,
            table_rows,
            title=f"Stored runs: {where_label} ({len(rows)} matched)",
        )
    ]
    group_by = getattr(args, "group_by", None)
    if group_by and not args.agg:
        raise ValueError("--group-by needs --agg FIELD to aggregate")
    if args.agg:
        agg = cache.aggregate(
            args.agg, where=args.where or None, group_by=group_by
        )
        if group_by:
            out.append("")
            if agg.get("groups"):
                out.append(
                    render_table(
                        [group_by, "count", "mean", "min", "max",
                         "p50", "p90", "p99"],
                        [
                            (
                                "-" if g["group"] is None else str(g["group"]),
                                str(g["count"]),
                            )
                            + tuple(
                                f"{g[k]:.4f}" if g["count"] else "-"
                                for k in ("mean", "min", "max",
                                          "p50", "p90", "p99")
                            )
                            for g in agg["groups"]
                        ],
                        title=f"Aggregate: {args.agg} per {group_by}",
                    )
                )
            else:
                out.append(
                    f"no rows to group by {group_by!r} for {args.agg!r}"
                )
        elif agg["count"]:
            out.append("")
            out.append(
                render_table(
                    ["Statistic", "Value"],
                    [
                        ("count", str(agg["count"])),
                        ("mean", f"{agg['mean']:.4f}"),
                        ("min", f"{agg['min']:.4f}"),
                        ("max", f"{agg['max']:.4f}"),
                        ("p50", f"{agg['p50']:.4f}"),
                        ("p90", f"{agg['p90']:.4f}"),
                        ("p99", f"{agg['p99']:.4f}"),
                    ],
                    title=f"Aggregate: {args.agg}",
                )
            )
        else:
            out.append(f"\nno numeric values of {args.agg!r} matched")
    if args.json:
        import json as _json
        import pathlib

        doc = {"rows": rows}
        if args.agg:
            doc["aggregate"] = cache.aggregate(
                args.agg, where=args.where or None, group_by=group_by
            )
        pathlib.Path(args.json).write_text(_json.dumps(doc, indent=2))
        out.append(f"\nquery result JSON written to {args.json}")
    return "\n".join(out)


def cmd_bench(args) -> str:
    """Run + archive the microbench suite, then apply the regression
    gate — the same two steps CI runs, reproducible locally."""
    import importlib.util
    import io
    import pathlib
    import subprocess
    import sys as _sys
    from contextlib import redirect_stdout

    repo_root = pathlib.Path(__file__).resolve().parents[2]
    bench_dir = repo_root / "benchmarks"
    if not bench_dir.is_dir():
        raise FileNotFoundError(
            f"benchmark suite not found at {bench_dir} "
            "(repro bench needs the source checkout)"
        )
    lines = []
    if not args.gate_only:
        targets = (
            ["benchmarks/"]
            if args.all
            else [
                "benchmarks/test_events_per_sec.py",
                "benchmarks/test_cache_lookup.py",
                "benchmarks/test_journal_append.py",
                "benchmarks/test_fleet_router.py",
                "benchmarks/test_malleable_recover.py",
            ]
        )
        cmd = [_sys.executable, "-m", "pytest", "--benchmark-only", "-q"]
        cmd += targets
        proc = subprocess.run(cmd, cwd=repo_root)
        if proc.returncode != 0:
            raise ValueError(
                f"benchmark run failed (pytest exit {proc.returncode})"
            )
        lines.append(
            f"microbenchmarks archived under {bench_dir / '_results'}"
        )
    results = sorted((bench_dir / "_results").glob("*.json"))
    if not results:
        raise FileNotFoundError(
            "no archived benchmark results to gate — run `repro bench` "
            "without --gate-only first"
        )
    spec = importlib.util.spec_from_file_location(
        "check_regression", bench_dir / "check_regression.py"
    )
    gate = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(gate)
    buf = io.StringIO()
    with redirect_stdout(buf):
        code = gate.main(
            [str(p) for p in results]
            + ["--tolerance", str(args.tolerance)]
        )
    lines.append(buf.getvalue().rstrip())
    if code != 0:
        raise ValueError("throughput regression gate failed:\n" + lines[-1])
    return "\n".join(lines)


def cmd_all(args) -> str:
    parts = [
        cmd_table1(args),
        "",
        cmd_fig3(args),
        "",
        cmd_fig7(args),
        "",
        cmd_fig8(args),
    ]
    return "\n".join(parts)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the evaluation of 'Application performance "
        "on a Cluster-Booster system' on the simulated DEEP-ER prototype.",
    )
    sub = p.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="Table I: hardware configuration")
    sub.add_parser("fig3", help="Fig 3: fabric bandwidth and latency")
    rp = sub.add_parser(
        "report",
        help="render a saved run report, or compose archived benchmark tables",
    )
    rp.add_argument(
        "file",
        nargs="?",
        default=None,
        help="any schema-tagged report JSON — run, sweep, or tune "
        "(omit to compose benchmarks/_results)",
    )
    def add_backend_arg(sp) -> None:
        """The event-queue backend flag every run-shaped command takes."""
        sp.add_argument(
            "--sim-backend",
            default=None,
            choices=sorted(SIM_BACKENDS),
            help="event-queue backend (default: REPRO_SIM_BACKEND or "
            "heap); backends are bit-identical, only throughput differs",
        )

    def add_spec_args(sp) -> None:
        """The one-experiment spec flags `run` and `submit` share."""
        sp.add_argument(
            "--preset",
            default="deep-er",
            choices=sorted(MACHINE_PRESETS),
            help="machine preset (default deep-er)",
        )
        sp.add_argument(
            "--app",
            default="xpic",
            choices=available_apps(),
            help="application driver (default xpic)",
        )
        sp.add_argument(
            "--mode",
            default="cb",
            help="placement: cluster / booster / cb (xpic), "
            "cluster / booster / split (seismic)",
        )
        sp.add_argument("--steps", type=int, default=100, help="time steps")
        sp.add_argument(
            "--nodes", type=int, default=1, help="nodes per solver (default 1)"
        )
        sp.add_argument(
            "--seed", type=int, default=20180521, help="workload RNG seed"
        )
        sp.add_argument(
            "--no-overlap",
            action="store_true",
            help="disable communication/compute overlap (xpic)",
        )
        sp.add_argument(
            "--swap-placement",
            action="store_true",
            help="swap solver placement: fields on Booster, "
            "particles on Cluster",
        )
        sp.add_argument(
            "--fault-plan",
            metavar="FILE",
            default=None,
            help="inject the faults of a plan JSON (see `repro faults`)",
        )
        sp.add_argument(
            "--mtbf",
            type=float,
            default=None,
            help="stream Poisson node crashes at this system MTBF [s]",
        )
        sp.add_argument(
            "--ckpt-interval",
            type=float,
            default=None,
            help="force the checkpoint cadence [s] (default: Young/Daly "
            "optimum when --mtbf is given)",
        )
        sp.add_argument(
            "--malleable",
            action="store_true",
            help="on node loss, re-tune the partition over the "
            "surviving machine and resume there (instead of the "
            "static degradation script); needs fault injection",
        )
        sp.add_argument(
            "--json", metavar="FILE", default=None,
            help="write the RunReport JSON",
        )
        add_backend_arg(sp)

    rn = sub.add_parser(
        "run", help="run one instrumented experiment through the engine"
    )
    add_spec_args(rn)
    rn.add_argument(
        "--trace",
        action="store_true",
        help="record per-phase intervals (implied by --chrome-trace)",
    )
    rn.add_argument(
        "--chrome-trace",
        metavar="FILE",
        default=None,
        help="write Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    rn.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="memoize the run in a content-addressed result store",
    )
    sv = sub.add_parser(
        "serve",
        help="serve experiment requests from a file-based job directory "
        "(queue/coalesce/batch over a shared worker pool)",
    )
    sv.add_argument(
        "--jobdir",
        metavar="DIR",
        required=True,
        help="the job directory clients submit into",
    )
    sv.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool workers executing batches (default 1)",
    )
    sv.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="answer repeated specs from a content-addressed store",
    )
    sv.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="admission bound; excess requests stay queued on disk "
        "(default 64)",
    )
    sv.add_argument(
        "--once",
        action="store_true",
        help="ingest everything pending, drain, flush results, exit "
        "(deterministic mode for CI)",
    )
    sv.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="stop serving after this long (default: run until killed)",
    )
    sv.add_argument(
        "--poll",
        type=float,
        default=0.1,
        help="job-directory scan interval [s] (default 0.1)",
    )
    sv.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-request progress lines",
    )
    sv.add_argument(
        "--status",
        action="store_true",
        help="report liveness (heartbeat), journal state and last "
        "metrics of the job directory, then exit",
    )
    sv.add_argument(
        "--stale-after-s",
        type=float,
        default=None,
        metavar="S",
        help="--status: declare a serving heartbeat stale past this "
        "age [s] and exit non-zero (default 30)",
    )
    sv.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the write-ahead job journal and heartbeat "
        "(jobs die with the process)",
    )
    sv.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="default queue-time budget per job [s]; expired jobs fail "
        "with DeadlineExceeded (default: none)",
    )
    sv.add_argument(
        "--batch-timeout",
        type=float,
        default=None,
        metavar="S",
        help="watchdog bound on one batch's wall-time [s]; a hung "
        "batch recycles the pool and isolates its jobs (default: none)",
    )
    add_backend_arg(sv)
    sb = sub.add_parser(
        "submit",
        help="submit one experiment request to a running `repro serve`",
    )
    add_spec_args(sb)
    sb.add_argument(
        "--jobdir",
        metavar="DIR",
        required=True,
        help="the served job directory to submit into",
    )
    sb.add_argument(
        "--priority",
        type=int,
        default=0,
        help="scheduling priority (higher dispatches first, default 0)",
    )
    sb.add_argument(
        "--client",
        default="cli",
        help="client id for fair-share scheduling (default cli)",
    )
    sb.add_argument(
        "--wait",
        action="store_true",
        help="block until the result file appears and render it",
    )
    sb.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="--wait timeout [s] (default 60)",
    )
    sb.add_argument(
        "--wait-timeout",
        type=float,
        default=None,
        metavar="S",
        help="total seconds to wait for the result file "
        "(overrides --timeout when given)",
    )
    sb.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="queue-time budget the service applies to this request "
        "[s] (default: none)",
    )
    sw = sub.add_parser(
        "sweep",
        help="run a modes x node-counts sweep through Engine.run_many",
    )
    sw.add_argument(
        "--preset",
        default="deep-er",
        choices=sorted(MACHINE_PRESETS),
        help="machine preset (default deep-er)",
    )
    sw.add_argument(
        "--app",
        default="xpic",
        choices=available_apps(),
        help="application driver (default xpic)",
    )
    sw.add_argument(
        "--modes",
        default="cluster,booster,cb",
        help="comma-separated placements (default cluster,booster,cb)",
    )
    sw.add_argument(
        "--nodes",
        default="1,2,4,8",
        help="comma-separated nodes-per-solver counts (default 1,2,4,8)",
    )
    sw.add_argument("--steps", type=int, default=100, help="time steps")
    sw.add_argument(
        "--seed", type=int, default=20180521, help="workload RNG seed"
    )
    sw.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool workers (1 = serial; results are identical)",
    )
    sw.add_argument(
        "--json", metavar="FILE", default=None, help="write SweepReport JSON"
    )
    sw.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="memoize every run in a content-addressed result store",
    )
    add_backend_arg(sw)
    tn = sub.add_parser(
        "tune",
        help="autotune the Cluster/Booster partition (model-seeded "
        "successive halving over the cached engine)",
    )
    tn.add_argument(
        "--preset",
        default="deep-er",
        choices=sorted(MACHINE_PRESETS),
        help="machine preset (default deep-er)",
    )
    tn.add_argument(
        "--steps",
        type=int,
        default=FIG78_STEPS,
        help=f"full-length xPic time steps (default {FIG78_STEPS})",
    )
    tn.add_argument(
        "--nodes",
        default="1,2,4,8",
        help="comma-separated per-side rank counts to search "
        "(default 1,2,4,8)",
    )
    tn.add_argument(
        "--generations",
        type=int,
        default=3,
        help="successive-halving rounds (default 3)",
    )
    tn.add_argument(
        "--population",
        type=int,
        default=8,
        help="model-seeded candidates entering round 1 (default 8)",
    )
    tn.add_argument(
        "--eta",
        type=int,
        default=2,
        help="halving factor between rounds (default 2)",
    )
    tn.add_argument(
        "--min-steps",
        type=int,
        default=5,
        help="floor on short-probe step counts (default 5)",
    )
    tn.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool workers for each generation's sweep",
    )
    tn.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="memoize every evaluation in a content-addressed store "
        "(a repeated tune resolves from cache)",
    )
    tn.add_argument(
        "--seed", type=int, default=20180521, help="workload RNG seed"
    )
    tn.add_argument(
        "--nested",
        action="store_true",
        help="also search hierarchical partitions (homogeneous pools "
        "sub-split into co-scheduled fields/particles arms)",
    )
    tn.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip measuring the hand-coded C+B baseline at full steps",
    )
    tn.add_argument(
        "--json", metavar="FILE", default=None, help="write TuneReport JSON"
    )
    add_backend_arg(tn)
    bn = sub.add_parser(
        "bench",
        help="run + archive the throughput microbenchmarks, then apply "
        "the regression gate (the CI steps, locally)",
    )
    bn.add_argument(
        "--all",
        action="store_true",
        help="run the whole benchmark suite (every table/figure), not "
        "just the gated throughput benches",
    )
    bn.add_argument(
        "--gate-only",
        action="store_true",
        help="skip running; gate the already-archived results",
    )
    bn.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fraction below each baseline floor (default 0.30)",
    )
    fl = sub.add_parser(
        "fleet",
        help="run / talk to a sharded service fleet (consistent-hash "
        "cache-key routing, work stealing, fleet-wide metrics)",
    )
    flsub = fl.add_subparsers(dest="verb", required=True)
    fls = flsub.add_parser(
        "serve",
        help="N experiment-service shards behind a TCP front-end router",
    )
    fls.add_argument(
        "--root",
        metavar="DIR",
        required=True,
        help="fleet root; shard i lives under ROOT/shard-0i",
    )
    fls.add_argument(
        "--shards",
        type=int,
        default=4,
        help="shard count (default 4)",
    )
    fls.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address of the front end (default 127.0.0.1)",
    )
    fls.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0 = ephemeral; printed on start)",
    )
    fls.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool workers per shard (default 1)",
    )
    fls.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="admission bound per shard (default 64)",
    )
    fls.add_argument(
        "--process",
        action="store_true",
        help="run each shard as its own `repro serve` process "
        "(journal + heartbeat durability; restart-on-death recovery)",
    )
    fls.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="stop serving after this long (default: run until killed)",
    )
    fls.add_argument(
        "--stale-after-s",
        type=float,
        default=5.0,
        metavar="S",
        help="heartbeat age past which the router declares a shard "
        "dead (default 5)",
    )
    fls.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the startup address lines",
    )
    flb = flsub.add_parser(
        "submit",
        help="submit one experiment to a running fleet front end",
    )
    add_spec_args(flb)
    flb.add_argument(
        "--address",
        metavar="HOST:PORT",
        required=True,
        help="the fleet front end to submit to",
    )
    flb.add_argument(
        "--priority",
        type=int,
        default=0,
        help="scheduling priority (higher dispatches first, default 0)",
    )
    flb.add_argument(
        "--client",
        default="cli",
        help="client id for fair-share scheduling (default cli)",
    )
    flb.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="queue-time budget the shard applies to this request [s]",
    )
    flb.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="socket timeout [s] (default 60)",
    )
    flt = flsub.add_parser(
        "status",
        help="aggregated fleet metrics + ledger-invariant check "
        "(non-zero exit on violation)",
    )
    flt.add_argument(
        "--address",
        metavar="HOST:PORT",
        required=True,
        help="the fleet front end to query",
    )
    flt.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="socket timeout [s] (default 10)",
    )
    ca = sub.add_parser(
        "cache", help="manage a tiered content-addressed result store"
    )
    ca.add_argument(
        "verb",
        choices=["stats", "prune", "verify", "export", "import"],
        help="stats: size + tier counters; prune: evict by policy; "
        "verify: audit entries + index (--repair rebuilds); "
        "export/import: exchange entry bundles between stores",
    )
    ca.add_argument(
        "--dir",
        metavar="DIR",
        required=True,
        help="the result store directory",
    )
    ca.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="prune: keep at most this many stored bytes (default: 0, "
        "clear everything)",
    )
    ca.add_argument(
        "--policy",
        default="age",
        choices=["age", "size", "hit-rate"],
        help="prune: victim ordering — oldest, largest, or fewest "
        "session hits first (default age)",
    )
    ca.add_argument(
        "--max-age-s",
        type=float,
        default=None,
        help="prune: also drop entries older than this many seconds",
    )
    ca.add_argument(
        "--repair",
        action="store_true",
        help="verify: delete corrupt or key-mismatched entries and "
        "rebuild the index from the blobs",
    )
    ca.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="export: write the bundle JSON here",
    )
    ca.add_argument(
        "--file",
        metavar="FILE",
        default=None,
        help="import: the bundle JSON to fold in",
    )
    ca.add_argument(
        "--where",
        metavar="PRED",
        action="append",
        default=None,
        help="export: only entries matching COLUMN OP VALUE predicates "
        "(repeatable, e.g. --where mode=C+B --where steps>=100)",
    )
    qr = sub.add_parser(
        "query",
        help="filter + aggregate stored runs from the store's columnar "
        "index (no report blobs are read for index columns)",
    )
    qr.add_argument(
        "--dir",
        metavar="DIR",
        required=True,
        help="the result store directory",
    )
    qr.add_argument(
        "--where",
        metavar="PRED",
        action="append",
        default=None,
        help="COLUMN OP VALUE predicate over index columns (repeatable); "
        "e.g. --where mode=C+B --where nodes_per_solver=8",
    )
    qr.add_argument(
        "--fields",
        default=None,
        help="comma-separated extra columns; dotted report paths "
        "(e.g. network.total_bytes) load only the matched blobs",
    )
    qr.add_argument(
        "--agg",
        metavar="FIELD",
        default=None,
        help="aggregate this column over the matches "
        "(count/mean/min/max/p50/p90/p99)",
    )
    qr.add_argument(
        "--group-by",
        metavar="COLUMN",
        default=None,
        help="with --agg: split the aggregate per distinct value of "
        "this column (one stats row per value, from the index alone)",
    )
    qr.add_argument(
        "--limit",
        type=int,
        default=None,
        help="show at most this many rows (newest first)",
    )
    qr.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the matched rows (and aggregate) as JSON",
    )
    for name, hlp in (
        ("fig7", "Fig 7: single-node mode comparison"),
        ("fig8", "Fig 8: scaling sweep"),
        ("validate", "grade every claim against its acceptance band"),
        ("all", "everything"),
    ):
        sp = sub.add_parser(name, help=hlp)
        sp.add_argument(
            "--steps",
            type=int,
            default=FIG78_STEPS,
            help=f"xPic time steps (default {FIG78_STEPS})",
        )
        sp.add_argument(
            "--workers",
            type=int,
            default=1,
            help="process-pool workers for the underlying sweep",
        )
        if name in ("fig7", "fig8"):
            sp.add_argument(
                "--fault-plan",
                metavar="FILE",
                default=None,
                help="inject the faults of a plan JSON into every run",
            )
            sp.add_argument(
                "--mtbf",
                type=float,
                default=None,
                help="stream Poisson node crashes at this MTBF [s]",
            )
            sp.add_argument(
                "--cache",
                metavar="DIR",
                default=None,
                help="memoize every run in a content-addressed store",
            )
    ft = sub.add_parser(
        "faults",
        help="draw a Poisson fault plan, or inspect an existing plan file",
    )
    ft.add_argument(
        "file",
        nargs="?",
        default=None,
        help="existing fault plan JSON to render (omit to generate)",
    )
    ft.add_argument(
        "--mtbf", type=float, default=None, help="system MTBF [s]"
    )
    ft.add_argument(
        "--horizon", type=float, default=None, help="schedule horizon [s]"
    )
    ft.add_argument(
        "--targets",
        default="",
        help="comma-separated node ids (or a:b endpoint pairs for link "
        "faults) the schedule draws from",
    )
    ft.add_argument(
        "--seed", type=int, default=20180521, help="schedule RNG seed"
    )
    ft.add_argument(
        "--kind",
        default="node_crash",
        choices=["node_crash", "link_down", "link_degrade"],
        help="fault kind of every drawn event (default node_crash)",
    )
    ft.add_argument(
        "--duration",
        type=float,
        default=None,
        help="self-heal each fault after this many seconds",
    )
    ft.add_argument(
        "--factor",
        type=float,
        default=None,
        help="bandwidth fraction for link_degrade events",
    )
    ft.add_argument(
        "--out", metavar="FILE", default=None, help="write the plan JSON"
    )
    return p


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "run": cmd_run,
        "sweep": cmd_sweep,
        "tune": cmd_tune,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "fleet": cmd_fleet,
        "bench": cmd_bench,
        "cache": cmd_cache,
        "query": cmd_query,
        "table1": cmd_table1,
        "fig3": cmd_fig3,
        "fig7": cmd_fig7,
        "fig8": cmd_fig8,
        "validate": cmd_validate,
        "report": cmd_report,
        "faults": cmd_faults,
        "all": cmd_all,
    }[args.command]
    try:
        out = handler(args)
        # handlers return text, or (text, exit_code) for status-style
        # verbs whose outcome scripts branch on
        code = 0
        if isinstance(out, tuple):
            out, code = out
        print(out)
    except (ValueError, FileNotFoundError, TimeoutError) as exc:
        # bad spec values, missing report files, or a submit --wait
        # that outlived its timeout: a message, not a trace
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # output piped into a pager/head that closed early: not an error
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
