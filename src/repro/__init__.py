"""repro — reproduction of "Application performance on a Cluster-Booster
system" (Kreuzer, Eicker, Amaya, Suarez; IPDPS Workshops 2018).

The package models the DEEP-ER prototype in software and reimplements
the full stack the paper describes:

* :mod:`repro.sim`        — discrete-event simulation engine
* :mod:`repro.hardware`   — Table I node/machine models
* :mod:`repro.network`    — EXTOLL-like fabric (Fig 3)
* :mod:`repro.mpi`        — ParaStation-like global MPI with spawn (Fig 4)
* :mod:`repro.perfmodel`  — roofline/Amdahl kernel cost model
* :mod:`repro.jobs`       — modular resource management
* :mod:`repro.ompss`      — OmpSs-like task offload + resiliency
* :mod:`repro.io`         — BeeGFS / BeeOND / SIONlib models
* :mod:`repro.resiliency` — SCR-like multi-level checkpoint/restart
* :mod:`repro.nam`        — network attached memory
* :mod:`repro.apps.xpic`  — the xPic PIC application (Figs 5-8)
* :mod:`repro.engine`     — declarative experiment specs + run engine
* :mod:`repro.instrument` — cross-layer metrics hub
* :mod:`repro.cache`      — content-addressed experiment result store
* :mod:`repro.autotune`   — model-guided partition autotuner
* :mod:`repro.bench`      — benchmark harnesses per table/figure
"""

__version__ = "1.2.0"

from .engine import Engine, ExperimentSpec, RunReport, SweepReport
from .hardware import Machine, build_deep_er_prototype
from .instrument import MetricsHub
from .sim import Simulator

__all__ = [
    "Simulator",
    "Machine",
    "build_deep_er_prototype",
    "Engine",
    "ExperimentSpec",
    "RunReport",
    "SweepReport",
    "MetricsHub",
    "__version__",
]
