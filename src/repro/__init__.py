"""repro — reproduction of "Application performance on a Cluster-Booster
system" (Kreuzer, Eicker, Amaya, Suarez; IPDPS Workshops 2018).

The package models the DEEP-ER prototype in software and reimplements
the full stack the paper describes:

* :mod:`repro.sim`        — discrete-event simulation engine
* :mod:`repro.hardware`   — Table I node/machine models
* :mod:`repro.network`    — EXTOLL-like fabric (Fig 3)
* :mod:`repro.mpi`        — ParaStation-like global MPI with spawn (Fig 4)
* :mod:`repro.perfmodel`  — roofline/Amdahl kernel cost model
* :mod:`repro.jobs`       — modular resource management
* :mod:`repro.ompss`      — OmpSs-like task offload + resiliency
* :mod:`repro.io`         — BeeGFS / BeeOND / SIONlib models
* :mod:`repro.resiliency` — SCR-like multi-level checkpoint/restart
* :mod:`repro.nam`        — network attached memory
* :mod:`repro.apps.xpic`  — the xPic PIC application (Figs 5-8)
* :mod:`repro.partition`  — the canonical (optionally hierarchical)
  :class:`~repro.partition.Partition` type every layer shares
* :mod:`repro.engine`     — declarative experiment specs + run engine
* :mod:`repro.instrument` — cross-layer metrics hub
* :mod:`repro.store`      — tiered content-addressed result store
  (:mod:`repro.cache` is the compatibility import path)
* :mod:`repro.autotune`   — model-guided partition autotuner
* :mod:`repro.serve`      — async experiment service (queue/coalesce/batch)
* :mod:`repro.fleet`      — sharded service fleet (cache-key routing,
  work stealing, fleet-wide metrics)
* :mod:`repro.api`        — the :class:`~repro.api.Session` facade
* :mod:`repro.report`     — unified schema-tagged report protocol
* :mod:`repro.bench`      — benchmark harnesses per table/figure

:class:`~repro.api.Session` is the documented entry point::

    from repro import Session

    report = Session().run(mode="cb", steps=100)
"""

__version__ = "1.8.0"

from .api import Session
from .engine import Engine, ExperimentSpec, RunReport, SweepReport
from .hardware import Machine, build_deep_er_prototype
from .instrument import MetricsHub
from .partition import Partition
from .report import load_report, report_from_dict
from .serve import ExperimentService, QueueFull
from .sim import Simulator

__all__ = [
    "Session",
    "Simulator",
    "Machine",
    "build_deep_er_prototype",
    "Engine",
    "ExperimentSpec",
    "Partition",
    "RunReport",
    "SweepReport",
    "MetricsHub",
    "ExperimentService",
    "QueueFull",
    "load_report",
    "report_from_dict",
    "__version__",
]
