"""The one documented front door: :class:`Session`.

PRs 1–4 grew a fast, cached, fault-tolerant experiment stack, but its
public surface accreted into kwarg sprawl: ``Engine.run(cache=...)``,
``Engine.run_many(workers=..., cache=...)``, ``autotune.tune(...)``
each re-threading the same knobs.  A :class:`Session` binds those
cross-cutting resources — the engine, the result cache, the worker
width — **once**, and every verb (``run`` / ``sweep`` / ``tune`` /
``serve``) reuses them::

    from repro.api import Session

    s = Session(cache="~/.cache/repro", workers=4)
    report = s.run(mode="cb", steps=200)        # one experiment
    sweep = s.sweep(specs)                      # parallel sweep
    tuned = s.tune(steps=200)                   # partition autotune
    with s.serve() as svc:                      # long-running service
        svc.submit(spec).result()

Every verb returns the same report objects the lower layers produce
(bit-identical to calling :class:`~repro.engine.Engine` directly), so
dropping down a layer is always possible — the facade adds no
behaviour, only a stable surface.  The CLI, claims validation, and the
figure runners all route through a Session.
"""

from __future__ import annotations

from typing import List, Optional

from .engine import Engine, ExperimentSpec, RunReport, SweepReport, _coerce_cache

__all__ = ["Session"]


class Session:
    """Bound engine + cache + worker width; the unified entry point.

    ``cache`` accepts a :class:`~repro.cache.ResultCache` or a
    directory path (None disables memoization); ``workers`` is the
    process-pool width sweeps and tunes fan out over; ``engine``
    replaces the default :class:`~repro.engine.Engine` (tests inject
    recording stubs through it); ``sim_backend`` picks the event-queue
    backend ("heap"/"calendar") every spec the session *builds*
    defaults to — an execution knob, never a result-changing one
    (backends are bit-identical).  A ready spec passed in keeps its own
    ``sim_backend``.

    ``fleet`` points :meth:`submit` at a sharded service fleet instead
    of a session-owned local service: an in-process
    :class:`~repro.fleet.FleetRouter`, a connected
    :class:`~repro.fleet.FleetClient`, or a ``"host:port"`` address (a
    client is built — and owned — on first use).
    """

    def __init__(
        self,
        cache=None,
        workers: int = 1,
        engine: Optional[Engine] = None,
        sim_backend: Optional[str] = None,
        fleet=None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1 (got {workers})")
        if sim_backend is not None:
            from .sim import resolve_backend

            resolve_backend(sim_backend)  # fail fast on unknown names
        self.engine = engine or Engine()
        self.cache = _coerce_cache(cache)
        self.workers = workers
        self.sim_backend = sim_backend
        self.fleet = fleet
        self._service = None  # lazily-owned service behind submit()
        self._owned_fleet_client = None  # built from a "host:port" fleet=

    # -- verbs ---------------------------------------------------------------
    def run(self, spec: Optional[ExperimentSpec] = None, /, **fields) -> RunReport:
        """Run one experiment; returns its :class:`~repro.engine.RunReport`.

        Accepts a ready :class:`~repro.engine.ExperimentSpec` *or* the
        spec fields directly (``s.run(mode="cb", steps=100)``).  The
        session cache memoizes the run when attached.
        """
        spec = self._spec(spec, fields)
        return self.engine.run(spec, cache=self.cache)

    def sweep(self, specs, workers: Optional[int] = None) -> SweepReport:
        """Run independent specs as one sweep over the session's pool.

        ``workers`` overrides the session width for this sweep only.
        Results are bit-identical to serial execution regardless of
        worker count.
        """
        return self.engine.run_many(
            list(specs),
            workers=self.workers if workers is None else workers,
            cache=self.cache,
        )

    def tune(self, space=None, nested: bool = False, **kwargs):
        """Autotune the Cluster/Booster partition; returns a TuneReport.

        Forwards to :func:`repro.autotune.tune` with the session's
        engine, cache, and worker width pre-bound (each still
        overridable by keyword).  ``nested=True`` widens the search to
        hierarchical partitions — homogeneous pools sub-split into
        co-scheduled fields/particles arms — either by flipping the
        flag on the default space or on the ``space`` you pass in.
        """
        import dataclasses as _dc

        from .autotune import TuneSpace, tune

        if nested:
            space = _dc.replace(space or TuneSpace(), nested=True)
        kwargs.setdefault("engine", self.engine)
        kwargs.setdefault("cache", self.cache)
        kwargs.setdefault("workers", self.workers)
        kwargs.setdefault("sim_backend", self.sim_backend)
        return tune(space=space, **kwargs)

    def serve(self, **kwargs):
        """A new :class:`~repro.serve.ExperimentService` on this
        session's engine, cache, and worker width (each overridable by
        keyword; see the service for queue/batch/retry/durability
        knobs)."""
        from .serve import ExperimentService

        kwargs.setdefault("engine", self.engine)
        kwargs.setdefault("cache", self.cache)
        kwargs.setdefault("workers", self.workers)
        return ExperimentService(**kwargs)

    def submit(
        self,
        spec: Optional[ExperimentSpec] = None,
        /,
        priority: int = 0,
        client: str = "api",
        deadline_s: Optional[float] = None,
        wait_timeout: Optional[float] = None,
        **fields,
    ):
        """Submit one experiment to this session's service; returns the
        :class:`~repro.serve.queue.Job` handle.

        Accepts a ready spec or spec fields (like :meth:`run`).  With
        ``fleet=`` set, the spec goes to the fleet instead — a router
        returns its :class:`~repro.fleet.FleetJob`, a client/address a
        resolved :class:`~repro.fleet.RemoteJob` — otherwise the
        session lazily owns one service (created on first use with the
        session's engine/cache/workers; :meth:`close` shuts it down).
        Backpressure is absorbed client-side: a full queue is retried
        with decorrelated-jitter backoff honoring the service's
        retry-after hint, for at most ``wait_timeout`` seconds of
        waiting (None = keep retrying through the default attempt
        budget), before the typed
        :class:`~repro.serve.queue.QueueFull` escapes to the caller.
        """
        spec = self._spec(spec, fields)
        if self.fleet is not None:
            return self._fleet_target().submit(
                spec, priority=priority, client=client, deadline_s=deadline_s
            )
        if self._service is None or not self._service.started:
            self._service = self.serve()
        return self._service.submit_with_retry(
            spec,
            priority=priority,
            client=client,
            deadline_s=deadline_s,
            wait_timeout_s=wait_timeout,
        )

    def _fleet_target(self):
        """The object :meth:`submit` dispatches to when ``fleet`` is set.

        Routers and clients are used as passed (caller-owned); a
        ``"host:port"`` string becomes one session-owned
        :class:`~repro.fleet.FleetClient`, closed by :meth:`close`.
        """
        if hasattr(self.fleet, "submit"):
            return self.fleet
        if self._owned_fleet_client is None:
            from .fleet import FleetClient

            self._owned_fleet_client = FleetClient(self.fleet)
        return self._owned_fleet_client

    def close(self) -> None:
        """Drain and shut down the session-owned service (if any) and
        close the session-owned fleet client (if any)."""
        if self._service is not None:
            self._service.shutdown(drain=True)
            self._service = None
        if self._owned_fleet_client is not None:
            self._owned_fleet_client.close()
            self._owned_fleet_client = None

    def __enter__(self) -> "Session":
        """Context-manager entry: the session itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    # -- helpers -------------------------------------------------------------
    def machine(self, preset: str = "deep-er", **overrides):
        """Build (unrun) the machine a preset describes."""
        return self.engine.build_machine(
            ExperimentSpec(preset=preset, machine_overrides=overrides)
        )

    def specs(self, base: Optional[dict] = None, **axes) -> List[ExperimentSpec]:
        """Cross-product spec builder for sweeps.

        Every keyword is either a scalar (fixed field) or a
        list/tuple (swept axis)::

            s.specs(steps=100, mode=["cluster", "cb"], nodes_per_solver=[1, 2])

        returns the 4 specs of the 2x2 product, in deterministic
        (sorted-axis, input-order) order.
        """
        fixed = dict(base or {})
        if self.sim_backend is not None:
            fixed.setdefault("sim_backend", self.sim_backend)
        sweep_axes = []
        for name, value in axes.items():
            if isinstance(value, (list, tuple)):
                sweep_axes.append((name, list(value)))
            else:
                fixed[name] = value
        specs = [ExperimentSpec(**fixed)] if not sweep_axes else []
        if sweep_axes:
            import itertools

            names = [n for n, _ in sweep_axes]
            for combo in itertools.product(*(v for _, v in sweep_axes)):
                specs.append(
                    ExperimentSpec(**fixed, **dict(zip(names, combo)))
                )
        return specs

    def cache_stats(self) -> dict:
        """The session cache's store + counter stats ({} when none)."""
        return {} if self.cache is None else self.cache.stats()

    def query(self, where=None, fields=None, limit=None):
        """Filter stored runs from the session cache's columnar index.

        ``where`` takes ``COLUMN OP VALUE`` predicate strings (or a
        dict of equalities) over index columns — spec fields and
        headline metrics — so the rows come back without loading any
        report blob::

            s.query(where=["mode=C+B", "nodes_per_solver=8"])

        ``fields`` adds columns (dotted report paths load only the
        matched blobs); ``limit`` caps the rows, newest first.
        Requires a cache; raises ``ValueError`` without one.
        """
        return self._store().query(where=where, fields=fields, limit=limit)

    def aggregate(
        self, field: str, where=None, group_by: Optional[str] = None
    ) -> dict:
        """count/sum/mean/min/max/p50/p90/p99 of one column over the
        filtered stored runs (index-only for index columns)::

            s.aggregate("total_runtime", where=["mode=C+B",
                        "nodes_per_solver=8"])["p99"]

        ``group_by`` splits the matched rows by another column and adds
        ``groups`` — one stats dict per distinct value, ordered::

            s.aggregate("total_runtime", group_by="mode")["groups"]

        Requires a cache; raises ``ValueError`` without one.
        """
        return self._store().aggregate(field, where=where, group_by=group_by)

    def _store(self):
        if self.cache is None:
            raise ValueError(
                "this Session has no result cache attached; construct it "
                "with Session(cache=DIR) to query stored runs"
            )
        return self.cache

    def _spec(self, spec, fields):
        if spec is None:
            if self.sim_backend is not None:
                fields.setdefault("sim_backend", self.sim_backend)
            return ExperimentSpec(**fields)
        if fields:
            raise TypeError(
                "pass either a ready ExperimentSpec or spec fields, not both"
            )
        return spec

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        root = None if self.cache is None else str(self.cache.root)
        return f"<Session workers={self.workers} cache={root!r}>"
