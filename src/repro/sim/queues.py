"""Pluggable event-queue backends for the :class:`~repro.sim.Simulator`.

The simulator's hot loop is, end to end, "push timestamped entries, pop
them back in (time, FIFO) order".  This module isolates that concern
behind a tiny interface — ``push`` / ``pop_batch`` / ``peek`` /
``len()`` — so the scheduling data structure can be swapped at runtime
without touching event or process semantics:

* :class:`HeapEventQueue` (``"heap"``) — the reference backend: one
  binary heap of ``(time, seq, entry)`` tuples, exactly the classic
  ``heapq`` event loop.
* :class:`CalendarEventQueue` (``"calendar"``) — a bucketed scheduler
  in the calendar-queue family: entries that share a timestamp live in
  one append-ordered bucket and only the *distinct* timestamps go
  through a heap.  Discrete-event workloads are extremely co-temporal
  (every process woken by the same barrier, every same-instant fabric
  wakeup), so the O(log n) heap churn is paid once per timestamp
  instead of once per event, and a whole bucket is handed to the run
  loop as one batch.

Both backends deliver entries in exactly the same order — ascending
time, FIFO among equal times — so a simulation replays event-for-event
and timestamp-identical regardless of backend.  ``pop_batch`` returns
*every* entry of the next timestamp at once (the batch-dequeue
contract); entries scheduled **at** that same timestamp *while the
batch executes* form a later batch, which preserves the global
(time, insertion) order a one-at-a-time heap loop would produce.

Backend selection: ``Simulator(backend="calendar")``, the
``REPRO_SIM_BACKEND`` environment variable, or (highest in the stack)
``ExperimentSpec(sim_backend=...)`` / the ``--sim-backend`` CLI flag.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import List, Tuple

__all__ = [
    "EmptyQueue",
    "HeapEventQueue",
    "CalendarEventQueue",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "resolve_backend",
    "make_queue",
]

#: environment variable consulted when no backend is passed explicitly
BACKEND_ENV_VAR = "REPRO_SIM_BACKEND"

#: the backend used when neither argument nor environment selects one
DEFAULT_BACKEND = "heap"


class EmptyQueue(IndexError):
    """Raised by ``pop_batch``/``peek`` (and :meth:`Simulator.step` /
    :meth:`Simulator.peek`) on an empty event queue.

    Subclasses :class:`IndexError` so callers that guarded the old
    bare ``heappop``/``[0]`` errors keep working unchanged.
    """


class HeapEventQueue:
    """Reference backend: one binary heap of ``(time, seq, entry)``.

    ``seq`` is a monotonically increasing tie-breaker, so entries that
    share a timestamp pop in FIFO (insertion) order — the ordering
    contract every backend must reproduce.
    """

    name = "heap"

    __slots__ = ("_heap", "_seq", "count")

    def __init__(self):
        self._heap: List[tuple] = []
        self._seq = 0
        #: live entry count (kept as a plain attribute so the hot
        #: scheduling path reads it without a method call)
        self.count = 0

    def push(self, when: float, entry) -> None:
        """Insert ``entry`` at time ``when`` (FIFO among equal times)."""
        self._seq += 1
        heappush(self._heap, (when, self._seq, entry))
        self.count += 1

    def pop_batch(self) -> Tuple[float, list]:
        """Remove and return ``(when, entries)`` for the next timestamp.

        ``entries`` holds every queued entry scheduled at exactly
        ``when``, in insertion order.  Raises :class:`EmptyQueue` when
        idle.
        """
        heap = self._heap
        if not heap:
            raise EmptyQueue("event queue is empty")
        when, _seq, entry = heappop(heap)
        batch = [entry]
        while heap and heap[0][0] == when:
            batch.append(heappop(heap)[2])
        self.count -= len(batch)
        return when, batch

    def peek(self) -> float:
        """Time of the next entry; raises :class:`EmptyQueue` when idle."""
        heap = self._heap
        if not heap:
            raise EmptyQueue("event queue is empty")
        return heap[0][0]

    def __len__(self) -> int:
        return self.count

    def stats(self) -> dict:
        """Backend-specific occupancy figures (none for the heap)."""
        return {}


class CalendarEventQueue:
    """Bucketed backend: a dict of per-timestamp buckets plus a heap of
    the distinct timestamps.

    ``push`` appends to the bucket of its exact timestamp (creating it
    — and registering the timestamp in the time heap — only on first
    use), so co-temporal events cost one list append instead of one
    heap sift each.  ``pop_batch`` pops the earliest timestamp and
    returns its whole bucket; the append order *is* the FIFO order, so
    no per-entry sequence numbers are needed at all.

    A timestamp is registered in the heap exactly once per bucket
    lifetime (buckets are popped wholesale), so the heap never holds
    duplicates and its size tracks the number of distinct pending
    times, not the number of pending entries.
    """

    name = "calendar"

    __slots__ = ("_buckets", "_times", "count", "peak_buckets")

    def __init__(self):
        self._buckets: dict = {}
        self._times: List[float] = []
        #: live entry count across all buckets
        self.count = 0
        #: high-water mark of distinct pending timestamps
        self.peak_buckets = 0

    def push(self, when: float, entry) -> None:
        """Insert ``entry`` at time ``when`` (FIFO among equal times)."""
        buckets = self._buckets
        bucket = buckets.get(when)
        if bucket is None:
            buckets[when] = [entry]
            heappush(self._times, when)
            n = len(self._times)
            if n > self.peak_buckets:
                self.peak_buckets = n
        else:
            bucket.append(entry)
        self.count += 1

    def pop_batch(self) -> Tuple[float, list]:
        """Remove and return ``(when, entries)`` for the next timestamp.

        Raises :class:`EmptyQueue` when idle.
        """
        times = self._times
        if not times:
            raise EmptyQueue("event queue is empty")
        when = heappop(times)
        batch = self._buckets.pop(when)
        self.count -= len(batch)
        return when, batch

    def peek(self) -> float:
        """Time of the next entry; raises :class:`EmptyQueue` when idle."""
        times = self._times
        if not times:
            raise EmptyQueue("event queue is empty")
        return times[0]

    def __len__(self) -> int:
        return self.count

    def stats(self) -> dict:
        """Bucket occupancy: distinct pending times now and at peak."""
        buckets = len(self._times)
        return {
            "buckets_now": buckets,
            "peak_buckets": self.peak_buckets,
            "mean_occupancy": (self.count / buckets) if buckets else 0.0,
        }


#: registry of selectable backends, by name
BACKENDS = {
    HeapEventQueue.name: HeapEventQueue,
    CalendarEventQueue.name: CalendarEventQueue,
}


def resolve_backend(name=None) -> str:
    """Resolve a backend name: explicit argument, else the
    ``REPRO_SIM_BACKEND`` environment variable, else the default.

    Raises :class:`ValueError` for names outside :data:`BACKENDS`.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    if name not in BACKENDS:
        raise ValueError(
            f"unknown sim backend {name!r} (available: {sorted(BACKENDS)})"
        )
    return name


def make_queue(name=None):
    """Instantiate the event-queue backend ``name`` resolves to."""
    return BACKENDS[resolve_backend(name)]()
