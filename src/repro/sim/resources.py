"""Shared-resource primitives: counted resources and FIFO stores.

``Resource`` models mutual exclusion with a fixed capacity (e.g. a
network link, an NVMe device queue).  ``Store`` is an unbounded (or
bounded) FIFO buffer of Python objects used for message mailboxes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from .events import PENDING, Event

__all__ = ["Resource", "Request", "Store", "NO_ITEM"]


class _NoItem:
    """Sentinel distinguishing "no matching item" from a stored ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<NO_ITEM>"


#: returned by :meth:`Store.peek` (as the ``default``) when no buffered
#: item matches — lets callers distinguish a stored ``None`` from a miss
NO_ITEM = _NoItem()


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Yields (succeeds) when the slot is granted.  The holder must call
    :meth:`Resource.release` with this request when done.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource

    def _reinit(self, resource: "Resource") -> "Request":
        """Reset a processed request for reuse (object pooling).

        Only safe once the request is processed and no longer referenced
        by any waiter; used by the fabric's slow-path request pool.
        """
        self.sim = resource.sim
        self.resource = resource
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.abandoned = False
        return self


class Resource:
    """A counted resource with FIFO granting.

    Example::

        link = Resource(sim, capacity=1)

        def user(sim, link):
            req = link.request()
            yield req
            try:
                yield sim.timeout(transfer_time)
            finally:
                link.release(req)
    """

    __slots__ = ("sim", "capacity", "_in_use", "_waiting")

    def __init__(self, sim: "Simulator", capacity: int = 1):  # noqa: F821
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Slots currently granted."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Requests waiting for a slot."""
        return len(self._waiting)

    def request(self, recycled: Optional[Request] = None) -> Request:
        """Ask for a slot; yields when granted (FIFO).

        ``recycled`` optionally reuses a processed :class:`Request`
        object instead of allocating one (see :meth:`Request._reinit`).
        """
        req = Request(self) if recycled is None else recycled._reinit(self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def try_acquire(self) -> bool:
        """Grant a slot immediately if one is idle and nobody queues.

        Event-free counterpart of :meth:`request` for uncontended fast
        paths; a granted slot must be returned via :meth:`release_slot`.
        Returns ``False`` (acquiring nothing) under any contention, so
        FIFO fairness of the queued path is preserved.
        """
        if self._in_use < self.capacity and not self._waiting:
            self._in_use += 1
            return True
        return False

    def release_slot(self) -> None:
        """Return a slot granted by :meth:`try_acquire`, waking the next
        live waiter (identical granting discipline as :meth:`release`)."""
        while self._waiting:
            nxt = self._waiting.popleft()
            if not nxt.abandoned:  # skip waiters interrupted away
                nxt.succeed()
                return
        self._in_use -= 1
        if self._in_use < 0:
            raise RuntimeError("release without matching request")

    def release(self, request: Request) -> None:
        """Give a granted slot back, waking the next live waiter."""
        if request.resource is not self:
            raise ValueError("request belongs to a different resource")
        self.release_slot()


class Store:
    """A FIFO buffer connecting producer and consumer processes.

    ``put(item)`` returns an event (immediate unless the store is
    bounded and full); ``get()`` returns an event that succeeds with the
    next item, optionally only one matching ``filter``.
    """

    __slots__ = ("sim", "capacity", "items", "_getters", "_putters", "_watchers")

    def __init__(self, sim: "Simulator", capacity: float = float("inf")):  # noqa: F821
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[tuple] = deque()  # (event, filter)
        self._putters: Deque[tuple] = deque()  # (event, item)
        self._watchers: Deque[tuple] = deque()  # (event, filter)

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert an item; the event blocks only when bounded and full."""
        ev = Event(self.sim)
        if len(self.items) < self.capacity:
            self._insert(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:
        """Event yielding the next (optionally filtered) item."""
        ev = Event(self.sim)
        idx = self._find(filter)
        if idx is not None:
            item = self.items[idx]
            del self.items[idx]
            ev.succeed(item)
            self._drain_putters()
        else:
            self._getters.append((ev, filter))
        return ev

    def peek(
        self,
        filter: Optional[Callable[[Any], bool]] = None,
        default: Any = None,
    ) -> Optional[Any]:
        """Non-destructively return the first matching item, else ``default``.

        A buffered item may legitimately *be* ``None``; pass
        ``default=NO_ITEM`` (the module sentinel) to distinguish a miss
        from a matched ``None``.
        """
        idx = self._find(filter)
        return self.items[idx] if idx is not None else default

    def watch(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:
        """Event that fires with a matching item *without consuming it*.

        Fires immediately if a match is already buffered (even a stored
        ``None``); otherwise when one arrives (MPI_Probe semantics).
        """
        ev = Event(self.sim)
        idx = self._find(filter)
        if idx is not None:
            ev.succeed(self.items[idx])
        else:
            self._watchers.append((ev, filter))
        return ev

    # -- internals -----------------------------------------------------------
    def _find(self, filter) -> Optional[int]:
        if filter is None:
            return 0 if self.items else None
        for i, item in enumerate(self.items):
            if filter(item):
                return i
        return None

    def _insert(self, item: Any) -> None:
        # Watchers observe without consuming.
        kept = deque()
        for ev, flt in self._watchers:
            if ev.abandoned:
                continue
            if flt is None or flt(item):
                ev.succeed(item)
            else:
                kept.append((ev, flt))
        self._watchers = kept
        # Try to satisfy a waiting getter directly; interrupted waiters
        # are dropped so they cannot swallow items meant for others.
        self._getters = deque(
            (ev, flt) for ev, flt in self._getters if not ev.abandoned
        )
        for i, (ev, flt) in enumerate(self._getters):
            if flt is None or flt(item):
                del self._getters[i]
                ev.succeed(item)
                return
        self.items.append(item)

    def _drain_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            ev, item = self._putters.popleft()
            self._insert(item)
            ev.succeed()
