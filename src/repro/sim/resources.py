"""Shared-resource primitives: counted resources and FIFO stores.

``Resource`` models mutual exclusion with a fixed capacity (e.g. a
network link, an NVMe device queue).  ``Store`` is an unbounded (or
bounded) FIFO buffer of Python objects used for message mailboxes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from .events import Event

__all__ = ["Resource", "Request", "Store"]


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Yields (succeeds) when the slot is granted.  The holder must call
    :meth:`Resource.release` with this request when done.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource


class Resource:
    """A counted resource with FIFO granting.

    Example::

        link = Resource(sim, capacity=1)

        def user(sim, link):
            req = link.request()
            yield req
            try:
                yield sim.timeout(transfer_time)
            finally:
                link.release(req)
    """

    def __init__(self, sim: "Simulator", capacity: int = 1):  # noqa: F821
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Slots currently granted."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for a slot; yields when granted (FIFO)."""
        req = Request(self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Give a granted slot back, waking the next live waiter."""
        if request.resource is not self:
            raise ValueError("request belongs to a different resource")
        while self._waiting:
            nxt = self._waiting.popleft()
            if not nxt.abandoned:  # skip waiters interrupted away
                nxt.succeed()
                return
        self._in_use -= 1
        if self._in_use < 0:
            raise RuntimeError("release without matching request")


class Store:
    """A FIFO buffer connecting producer and consumer processes.

    ``put(item)`` returns an event (immediate unless the store is
    bounded and full); ``get()`` returns an event that succeeds with the
    next item, optionally only one matching ``filter``.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf")):  # noqa: F821
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[tuple] = deque()  # (event, filter)
        self._putters: Deque[tuple] = deque()  # (event, item)
        self._watchers: Deque[tuple] = deque()  # (event, filter)

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert an item; the event blocks only when bounded and full."""
        ev = Event(self.sim)
        if len(self.items) < self.capacity:
            self._insert(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:
        """Event yielding the next (optionally filtered) item."""
        ev = Event(self.sim)
        idx = self._find(filter)
        if idx is not None:
            item = self.items[idx]
            del self.items[idx]
            ev.succeed(item)
            self._drain_putters()
        else:
            self._getters.append((ev, filter))
        return ev

    def peek(self, filter: Optional[Callable[[Any], bool]] = None) -> Optional[Any]:
        """Non-destructively return the first matching item, if any."""
        idx = self._find(filter)
        return self.items[idx] if idx is not None else None

    def watch(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:
        """Event that fires with a matching item *without consuming it*.

        Fires immediately if a match is already buffered; otherwise when
        one arrives (MPI_Probe semantics).
        """
        ev = Event(self.sim)
        item = self.peek(filter)
        if item is not None or (filter is None and self.items):
            ev.succeed(self.items[self._find(filter)])
        else:
            self._watchers.append((ev, filter))
        return ev

    # -- internals -----------------------------------------------------------
    def _find(self, filter) -> Optional[int]:
        if filter is None:
            return 0 if self.items else None
        for i, item in enumerate(self.items):
            if filter(item):
                return i
        return None

    def _insert(self, item: Any) -> None:
        # Watchers observe without consuming.
        kept = deque()
        for ev, flt in self._watchers:
            if ev.abandoned:
                continue
            if flt is None or flt(item):
                ev.succeed(item)
            else:
                kept.append((ev, flt))
        self._watchers = kept
        # Try to satisfy a waiting getter directly; interrupted waiters
        # are dropped so they cannot swallow items meant for others.
        self._getters = deque(
            (ev, flt) for ev, flt in self._getters if not ev.abandoned
        )
        for i, (ev, flt) in enumerate(self._getters):
            if flt is None or flt(item):
                del self._getters[i]
                ev.succeed(item)
                return
        self.items.append(item)

    def _drain_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            ev, item = self._putters.popleft()
            self._insert(item)
            ev.succeed()
