"""Execution tracing: named intervals per actor, ASCII Gantt rendering.

Used to visualize the Cluster-Booster pipeline (which phases overlap,
where the dependency stalls are) without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = ["Interval", "Tracer"]


@dataclass(frozen=True)
class Interval:
    """One traced span of an actor's timeline."""

    actor: str
    label: str
    start: float
    end: float

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError("interval ends before it starts")

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start


class Tracer:
    """Collects intervals; renders actor timelines as an ASCII chart."""

    def __init__(self):
        self.intervals: List[Interval] = []

    def record(self, actor: str, label: str, start: float, end: float) -> Interval:
        """Add one interval ending at ``end`` to an actor's timeline."""
        iv = Interval(actor, label, start, end)
        self.intervals.append(iv)
        return iv

    def actors(self) -> List[str]:
        """All actors in first-appearance order."""
        seen: Dict[str, None] = {}
        for iv in self.intervals:
            seen.setdefault(iv.actor)
        return list(seen)

    def timeline(self, actor: str) -> List[Interval]:
        """One actor's intervals, sorted by start time."""
        return sorted(
            (iv for iv in self.intervals if iv.actor == actor),
            key=lambda iv: iv.start,
        )

    def busy_time(self, actor: str, label: Optional[str] = None) -> float:
        """Total recorded time of an actor (optionally one label)."""
        return sum(
            iv.duration
            for iv in self.intervals
            if iv.actor == actor and (label is None or iv.label == label)
        )

    def span(self) -> tuple:
        """(earliest start, latest end) over all intervals."""
        if not self.intervals:
            return (0.0, 0.0)
        return (
            min(iv.start for iv in self.intervals),
            max(iv.end for iv in self.intervals),
        )

    def gantt(
        self,
        width: int = 72,
        actors: Optional[Sequence[str]] = None,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        legend: bool = True,
    ) -> str:
        """ASCII Gantt chart: one row per actor, one glyph per label.

        Later intervals overwrite earlier ones in a cell; idle time is
        rendered as ``.``.
        """
        if not self.intervals:
            return "(no intervals recorded)"
        lo, hi = self.span()
        t0 = lo if t0 is None else t0
        t1 = hi if t1 is None else t1
        if t1 <= t0:
            raise ValueError("empty time window")
        actors = list(actors) if actors is not None else self.actors()
        labels = []
        for iv in self.intervals:
            if iv.label not in labels:
                labels.append(iv.label)
        glyphs = {}
        palette = "FPXMIOABCDEGHJKLNQRSTUVWYZ#@*+"
        for i, label in enumerate(labels):
            # prefer the label's initial when unique
            cand = label[0].upper()
            if cand in glyphs.values():
                # probe the whole palette once; with more labels than
                # glyphs, fall back to reusing one deterministically
                for j in range(len(palette)):
                    probe = palette[(i + j) % len(palette)]
                    if probe not in glyphs.values():
                        cand = probe
                        break
                else:
                    cand = palette[i % len(palette)]
            glyphs[label] = cand

        scale = width / (t1 - t0)
        name_w = max(len(a) for a in actors)
        out = []
        for actor in actors:
            row = ["."] * width
            for iv in self.timeline(actor):
                a = int((max(iv.start, t0) - t0) * scale)
                b = int((min(iv.end, t1) - t0) * scale)
                b = max(b, a + 1)
                for c in range(a, min(b, width)):
                    row[c] = glyphs[iv.label]
            out.append(f"{actor.rjust(name_w)} |{''.join(row)}|")
        header = (
            f"{' ' * name_w}  t = {t0 * 1e3:.3f} ms"
            f"{' ' * max(1, width - 30)}t = {t1 * 1e3:.3f} ms"
        )
        out.insert(0, header)
        if legend:
            out.append(
                "legend: "
                + "  ".join(f"{g}={label}" for label, g in glyphs.items())
                + "  .=idle"
            )
        return "\n".join(out)

    def to_chrome_trace(self) -> list:
        """Export as Chrome trace-event JSON objects (load the result
        of ``json.dump`` into chrome://tracing or Perfetto).

        Times are microseconds; one 'process' per actor.
        """
        actors = self.actors()
        pid = {a: i for i, a in enumerate(actors)}
        events = [
            {
                "name": a,
                "ph": "M",
                "pid": pid[a],
                "args": {"name": a},
            }
            for a in actors
        ]
        for iv in self.intervals:
            events.append(
                {
                    "name": iv.label,
                    "cat": "phase",
                    "ph": "X",
                    "pid": pid[iv.actor],
                    "tid": 0,
                    "ts": iv.start * 1e6,
                    "dur": iv.duration * 1e6,
                }
            )
        return events

    def save_chrome_trace(self, path) -> None:
        """Write the Chrome trace to a JSON file."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_chrome_trace()))
