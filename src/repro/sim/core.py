"""The discrete-event simulator core: clock, pluggable queue, run loop.

The simulator owns the virtual clock and delegates event storage to a
pluggable :mod:`~repro.sim.queues` backend (``"heap"`` — the reference
binary heap — or ``"calendar"`` — a timestamp-bucketed scheduler that
amortizes heap churn over co-temporal events).  The run loop is
batch-oriented: every event scheduled at the next timestamp is dequeued
in one ``pop_batch`` and dispatched back-to-back, which both backends
order identically (ascending time, FIFO among equal times), so a run is
event-for-event and timestamp-identical regardless of backend.
"""

from __future__ import annotations

import time
from typing import Any, Generator, Optional

from .events import WAKE_OK, Event, Timeout, _Wakeup
from .process import Process
from .queues import EmptyQueue, make_queue

__all__ = ["Simulator", "StopSimulation", "EmptyQueue"]


class StopSimulation(Exception):
    """Raised internally to end :meth:`Simulator.run` early."""


class Simulator:
    """Priority-queue driven discrete-event simulator.

    Time is a float in **seconds** by convention throughout this project
    (network latencies are therefore around ``1e-6``).

    ``backend`` selects the event-queue implementation (``"heap"`` or
    ``"calendar"``; ``None`` consults the ``REPRO_SIM_BACKEND``
    environment variable, defaulting to the heap).  Backends are
    bit-identical: same event order, same timestamps, same results —
    only the host-side throughput differs.

    Typical use::

        sim = Simulator()                      # or backend="calendar"

        def proc(sim):
            yield sim.timeout(1.0)
            return 42

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 42
    """

    def __init__(self, start_time: float = 0.0, backend: Optional[str] = None):
        self._now = float(start_time)
        self._queue = make_queue(backend)
        #: resolved name of the event-queue backend in use
        self.backend: str = self._queue.name
        # batch in flight: entries popped by step() but not yet
        # delivered (plus the tail of a batch a StopSimulation cut
        # short); _draining mirrors its length so depth accounting on
        # the push path is one attribute read
        self._pending: list = []
        self._pending_when = self._now
        self._draining = 0
        self._active_process: Optional[Process] = None
        self.events_processed = 0
        #: events that took the allocation-free timeout fast path
        self.fast_wakeups = 0
        #: batches dequeued (every pop_batch, singletons included)
        self.batches = 0
        #: largest single batch of co-temporal events dequeued
        self.max_batch = 0
        # histogram of multi-event batch sizes, keyed by bit_length
        # (size 1 is implicit: batches - sum of these counts)
        self._batch_hist: dict = {}
        #: high-water mark of the event queue (queued + in-flight batch)
        self.peak_queue_depth = 0
        #: accumulated real (host) time spent inside :meth:`run`
        self.wall_time_s = 0.0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process whose generator is currently executing, if any."""
        return self._active_process

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        q = self._queue
        q.push(self._now + delay, event)
        depth = q.count + self._draining
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth

    def _schedule_wakeup(self, process: Process, delay: float) -> None:
        """Timeout fast path: resume ``process`` after ``delay`` without
        allocating an Event (used when a process yields a bare number).

        The per-process :class:`_Wakeup` is reused between waits; a
        fresh one is only allocated if the old one is still queued
        (i.e. was cancelled by an interrupt and not yet popped).
        """
        wakeup = process._wakeup
        if wakeup is None or wakeup.pending:
            wakeup = _Wakeup(process)
            process._wakeup = wakeup
        wakeup.pending = True
        wakeup.cancelled = False
        q = self._queue
        q.push(self._now + delay, wakeup)
        depth = q.count + self._draining
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth

    def schedule_at(self, event: Event, when: float) -> None:
        """Schedule a *triggered* event at absolute time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        q = self._queue
        q.push(when, event)
        depth = q.count + self._draining
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator and return it.

        The returned :class:`Process` is itself an event that succeeds
        with the generator's return value.
        """
        return Process(self, generator)

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        """Entries still owed to the run loop (queued + in-flight)."""
        return self._queue.count + self._draining

    def queue_stats(self) -> dict:
        """Backend-specific queue occupancy figures (see the backend's
        ``stats()``; empty for the heap)."""
        return self._queue.stats()

    def batch_size_hist(self) -> dict:
        """Histogram of dequeued batch sizes, power-of-two binned.

        Keys are bin labels (``"1"``, ``"2-3"``, ``"4-7"``, ...), values
        are batch counts; identical across backends for the same run.
        """
        multi = sum(self._batch_hist.values())
        hist = {}
        if self.batches > multi:
            hist["1"] = self.batches - multi
        for k in sorted(self._batch_hist):
            lo, hi = 1 << (k - 1), (1 << k) - 1
            hist[f"{lo}-{hi}"] = self._batch_hist[k]
        return hist

    # -- run loop ----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event.

        Raises :class:`EmptyQueue` (an :class:`IndexError`) when the
        simulation is idle.
        """
        if self._draining:
            return self._pending_when
        return self._queue.peek()

    def _pop_batch(self):
        """Dequeue the next timestamp's batch, updating batch metrics."""
        when, batch = self._queue.pop_batch()
        n = len(batch)
        self.batches += 1
        if n > 1:
            k = n.bit_length()
            hist = self._batch_hist
            hist[k] = hist.get(k, 0) + 1
            if n > self.max_batch:
                self.max_batch = n
        elif not self.max_batch:
            self.max_batch = 1
        return when, batch

    def _dispatch(self, entry) -> None:
        """Deliver one dequeued entry (wakeup fast path or callbacks)."""
        if entry.__class__ is _Wakeup:
            entry.pending = False
            if not entry.cancelled:
                self.fast_wakeups += 1
                entry.process._resume(WAKE_OK)
            return
        callbacks = entry.callbacks
        entry.callbacks = None  # mark processed
        for cb in callbacks:
            cb(entry)
        if not entry._ok and not entry._defused:
            # An un-handled failure: surface it rather than losing it.
            raise entry._value

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it).

        Raises :class:`EmptyQueue` (an :class:`IndexError`) when no
        events remain.  When several events share the next timestamp the
        whole batch is dequeued and buffered; each ``step()`` delivers
        one entry of it, in the same order :meth:`run` would.
        """
        pending = self._pending
        if not pending:
            when, batch = self._pop_batch()
            self._pending_when = when
            pending.extend(batch)
            self._draining = len(batch)
        self._now = self._pending_when
        entry = pending.pop(0)
        self._draining -= 1
        self.events_processed += 1
        self._dispatch(entry)

    def step_batch(self) -> int:
        """Process every event at the next timestamp; returns the count.

        This is the run loop's unit of work: one batch of co-temporal
        events, delivered back-to-back.  Events scheduled at the *same*
        time during the batch form a later batch (preserving FIFO).
        Raises :class:`EmptyQueue` when no events remain.
        """
        pending = self._pending
        if not pending:
            when, batch = self._pop_batch()
            self._pending_when = when
            pending.extend(batch)
            self._draining = len(batch)
        self._now = self._pending_when
        done = 0
        while pending:
            entry = pending.pop(0)
            self._draining -= 1
            self.events_processed += 1
            done += 1
            self._dispatch(entry)
        return done

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue is empty or the clock passes ``until``."""
        if until is not None:
            if until < self._now:
                raise ValueError(f"until ({until}) lies in the past")
            stopper = Event(self)
            stopper._ok = True
            stopper._value = None
            stopper.callbacks.append(self._raise_stop)
            self.schedule_at(stopper, until)
        t0 = time.perf_counter()  # wall-clock-ok: host-side telemetry only
        try:
            self._run_loop()
        except StopSimulation:
            pass
        finally:
            self.wall_time_s += time.perf_counter() - t0  # wall-clock-ok: host-side telemetry only

    def _run_loop(self) -> None:
        """The hot loop: dequeue one timestamp batch, deliver its events.

        Everything dispatch needs is bound to locals; the per-event work
        for a pooled wakeup is the class check, two flag writes, and the
        generator resume.  A mid-batch exception (including the
        ``StopSimulation`` a ``run(until=...)`` stopper raises) stashes
        the undelivered tail in ``_pending`` so queue state stays exact.
        """
        pop_batch = self._pop_batch
        pending = self._pending
        hist_cls = _Wakeup
        while True:
            if pending:
                # tail of a batch a step()/stop cut short: finish it
                self._now = self._pending_when
                while pending:
                    entry = pending.pop(0)
                    self._draining -= 1
                    self.events_processed += 1
                    self._dispatch(entry)
            try:
                when, batch = pop_batch()
            except EmptyQueue:
                return
            self._now = when
            n = len(batch)
            self.events_processed += n
            fast = 0
            if n == 1:
                entry = batch[0]
                if entry.__class__ is hist_cls:
                    entry.pending = False
                    if not entry.cancelled:
                        self.fast_wakeups += 1
                        entry.process._resume(WAKE_OK)
                    continue
                callbacks = entry.callbacks
                entry.callbacks = None
                for cb in callbacks:
                    cb(entry)
                if not entry._ok and not entry._defused:
                    raise entry._value
                continue
            self._draining = n
            it = iter(batch)
            try:
                for entry in it:
                    self._draining -= 1
                    if entry.__class__ is hist_cls:
                        entry.pending = False
                        if not entry.cancelled:
                            fast += 1
                            entry.process._resume(WAKE_OK)
                        continue
                    callbacks = entry.callbacks
                    entry.callbacks = None
                    for cb in callbacks:
                        cb(entry)
                    if not entry._ok and not entry._defused:
                        raise entry._value
            except BaseException:
                # keep the undelivered tail (events_processed was bumped
                # for the whole batch up front: take the tail back out)
                rest = list(it)
                if rest:
                    pending.extend(rest)
                    self._pending_when = when
                self._draining = len(rest)
                self.events_processed -= len(rest)
                self.fast_wakeups += fast
                raise
            self.fast_wakeups += fast

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Convenience: start ``generator`` as a process, run, return its value."""
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise RuntimeError("process did not finish before the simulation ended")
        if not proc._ok:
            raise proc._value
        return proc._value

    @staticmethod
    def _raise_stop(_event: Event) -> None:
        raise StopSimulation()
