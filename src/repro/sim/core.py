"""The discrete-event simulator core: clock, queue, and run loop."""

from __future__ import annotations

import heapq
import time
from typing import Any, Generator, Optional

from .events import WAKE_OK, Event, Timeout, _Wakeup
from .process import Process

__all__ = ["Simulator", "StopSimulation"]


class StopSimulation(Exception):
    """Raised internally to end :meth:`Simulator.run` early."""


class Simulator:
    """Priority-queue driven discrete-event simulator.

    Time is a float in **seconds** by convention throughout this project
    (network latencies are therefore around ``1e-6``).

    Typical use::

        sim = Simulator()

        def proc(sim):
            yield sim.timeout(1.0)
            return 42

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 42
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list = []
        self._seq = 0  # tie-breaker: FIFO among simultaneous events
        self._active_process: Optional[Process] = None
        self.events_processed = 0
        #: events that took the allocation-free timeout fast path
        self.fast_wakeups = 0
        #: high-water mark of the event queue
        self.peak_queue_depth = 0
        #: accumulated real (host) time spent inside :meth:`run`
        self.wall_time_s = 0.0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process whose generator is currently executing, if any."""
        return self._active_process

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        q = self._queue
        heapq.heappush(q, (self._now + delay, self._seq, event))
        if len(q) > self.peak_queue_depth:
            self.peak_queue_depth = len(q)

    def _schedule_wakeup(self, process: Process, delay: float) -> None:
        """Timeout fast path: resume ``process`` after ``delay`` without
        allocating an Event (used when a process yields a bare number).

        The per-process :class:`_Wakeup` is reused between waits; a
        fresh one is only allocated if the old one is still queued
        (i.e. was cancelled by an interrupt and not yet popped).
        """
        wakeup = process._wakeup
        if wakeup is None or wakeup.pending:
            wakeup = _Wakeup(process)
            process._wakeup = wakeup
        wakeup.pending = True
        wakeup.cancelled = False
        self._seq += 1
        q = self._queue
        heapq.heappush(q, (self._now + delay, self._seq, wakeup))
        if len(q) > self.peak_queue_depth:
            self.peak_queue_depth = len(q)

    def schedule_at(self, event: Event, when: float) -> None:
        """Schedule a *triggered* event at absolute time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        self._seq += 1
        q = self._queue
        heapq.heappush(q, (when, self._seq, event))
        if len(q) > self.peak_queue_depth:
            self.peak_queue_depth = len(q)

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator and return it.

        The returned :class:`Process` is itself an event that succeeds
        with the generator's return value.
        """
        return Process(self, generator)

    # -- run loop ----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        self.events_processed += 1
        if event.__class__ is _Wakeup:
            # timeout fast path: resume the process directly
            event.pending = False
            if not event.cancelled:
                self.fast_wakeups += 1
                event.process._resume(WAKE_OK)
            return
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            # An un-handled failure: surface it rather than losing it.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue is empty or the clock passes ``until``."""
        if until is not None:
            if until < self._now:
                raise ValueError(f"until ({until}) lies in the past")
            stopper = Event(self)
            stopper._ok = True
            stopper._value = None
            stopper.callbacks.append(self._raise_stop)
            self.schedule_at(stopper, until)
        t0 = time.perf_counter()  # wall-clock-ok: host-side telemetry only
        try:
            while self._queue:
                self.step()
        except StopSimulation:
            pass
        finally:
            self.wall_time_s += time.perf_counter() - t0  # wall-clock-ok: host-side telemetry only

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Convenience: start ``generator`` as a process, run, return its value."""
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise RuntimeError("process did not finish before the simulation ended")
        if not proc._ok:
            raise proc._value
        return proc._value

    @staticmethod
    def _raise_stop(_event: Event) -> None:
        raise StopSimulation()
