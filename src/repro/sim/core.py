"""The discrete-event simulator core: clock, queue, and run loop."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from .events import Event, Timeout
from .process import Process

__all__ = ["Simulator", "StopSimulation"]


class StopSimulation(Exception):
    """Raised internally to end :meth:`Simulator.run` early."""


class Simulator:
    """Priority-queue driven discrete-event simulator.

    Time is a float in **seconds** by convention throughout this project
    (network latencies are therefore around ``1e-6``).

    Typical use::

        sim = Simulator()

        def proc(sim):
            yield sim.timeout(1.0)
            return 42

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 42
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list = []
        self._seq = 0  # tie-breaker: FIFO among simultaneous events
        self._active_process: Optional[Process] = None
        self.events_processed = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process whose generator is currently executing, if any."""
        return self._active_process

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    def schedule_at(self, event: Event, when: float) -> None:
        """Schedule a *triggered* event at absolute time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, event))

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator and return it.

        The returned :class:`Process` is itself an event that succeeds
        with the generator's return value.
        """
        return Process(self, generator)

    # -- run loop ----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            # An un-handled failure: surface it rather than losing it.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue is empty or the clock passes ``until``."""
        if until is not None:
            if until < self._now:
                raise ValueError(f"until ({until}) lies in the past")
            stopper = Event(self)
            stopper._ok = True
            stopper._value = None
            stopper.callbacks.append(self._raise_stop)
            self.schedule_at(stopper, until)
        try:
            while self._queue:
                self.step()
        except StopSimulation:
            pass

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Convenience: start ``generator`` as a process, run, return its value."""
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise RuntimeError("process did not finish before the simulation ended")
        if not proc._ok:
            raise proc._value
        return proc._value

    @staticmethod
    def _raise_stop(_event: Event) -> None:
        raise StopSimulation()
