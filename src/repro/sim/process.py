"""Generator-based simulation processes."""

from __future__ import annotations

from typing import Any, Generator

from .events import PENDING, Event, Interrupt, _Wakeup

__all__ = ["Process"]


class Process(Event):
    """A simulation process wrapping a Python generator.

    The generator yields :class:`~repro.sim.events.Event` instances to
    suspend; it is resumed with the event's value (or the event's
    exception is thrown into it).  The process is itself an event that
    succeeds with the generator's ``return`` value, so processes can be
    joined by yielding them.

    As a fast path, a generator may also yield a bare non-negative
    number: it suspends for that many seconds, exactly like yielding
    ``sim.timeout(n)`` but without allocating an event (the simulator
    reuses one pooled wakeup entry per process).
    """

    __slots__ = ("generator", "_target", "_wakeup")

    def __init__(self, sim: "Simulator", generator: Generator):  # noqa: F821
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__} "
                "(did you forget to call the generator function?)"
            )
        super().__init__(sim)
        self.generator = generator
        self._target: Event = None
        self._wakeup: _Wakeup = None
        # Kick off the process at the current simulation time.
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        sim._schedule(init)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Used e.g. for failure injection.  Interrupting a finished
        process is an error.
        """
        if not self.is_alive:
            raise RuntimeError("cannot interrupt a finished process")
        if self.sim.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        # Detach from the event we were waiting on, then resume with failure.
        target = self._target
        if type(target) is _Wakeup:
            # fast-path wait: leave the queued entry to be discarded
            target.cancelled = True
        elif target is not None and not target.processed:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            # nobody is listening anymore: producers must skip it
            target.abandoned = True
        interrupt_ev = Event(self.sim)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev.callbacks.append(self._resume)
        self.sim._schedule(interrupt_ev)

    # -- internal ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._value is not PENDING:
            # The process finished between this event being scheduled
            # and delivered (e.g. two same-instant interrupts: the first
            # one ends the generator, the second finds it gone).  The
            # event is stale — discard it.  Fast-path wake tokens never
            # enter the queue, so only real events need defusing.
            if isinstance(event, Event):
                event.defuse()
            return
        sim = self.sim
        send = self.generator.send
        sim._active_process = self
        try:
            while True:
                try:
                    if event._ok:
                        target = send(event._value)
                    else:
                        event.defuse()
                        target = self.generator.throw(event._value)
                except StopIteration as stop:
                    self._target = None
                    self.succeed(stop.value)
                    break
                except BaseException as exc:
                    self._target = None
                    self.fail(exc)
                    break

                cls = target.__class__
                if cls is float or cls is int:
                    # Fast path: a bare number is a timeout of that many
                    # seconds, scheduled without allocating an Event.
                    if target < 0:
                        exc = ValueError(f"negative delay {target}")
                        event = Event(sim)
                        event._ok = False
                        event._value = exc
                        event._defused = True
                        continue
                    sim._schedule_wakeup(self, target)
                    self._target = self._wakeup
                    break
                if not isinstance(target, Event):
                    exc = TypeError(
                        f"process yielded a non-event: {target!r}"
                    )
                    # Feed the error straight back into the generator.
                    event = Event(sim)
                    event._ok = False
                    event._value = exc
                    event._defused = True
                    continue
                if target.sim is not sim:
                    raise RuntimeError("yielded an event from another simulator")
                if target.callbacks is None:
                    # Already processed: loop immediately with its value.
                    event = target
                    continue
                target.callbacks.append(self._resume)
                self._target = target
                break
        finally:
            sim._active_process = None
