"""Discrete-event simulation engine underlying the Cluster-Booster model.

A small, dependency-free process-based simulator: generator processes
suspend on :class:`Event` objects, the :class:`Simulator` advances a
virtual clock through a priority queue.  All times are in **seconds**.
"""

from .core import Simulator, StopSimulation
from .events import AllOf, AnyOf, Condition, Event, Interrupt, Timeout
from .process import Process
from .queues import (
    BACKEND_ENV_VAR,
    BACKENDS,
    DEFAULT_BACKEND,
    CalendarEventQueue,
    EmptyQueue,
    HeapEventQueue,
    resolve_backend,
)
from .resources import NO_ITEM, Request, Resource, Store
from .trace import Interval, Tracer

__all__ = [
    "Simulator",
    "StopSimulation",
    "EmptyQueue",
    "HeapEventQueue",
    "CalendarEventQueue",
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "resolve_backend",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "Resource",
    "Request",
    "Store",
    "NO_ITEM",
    "Tracer",
    "Interval",
]
