"""Event primitives for the discrete-event simulation engine.

The engine follows the classic event/process paradigm (in the spirit of
SimPy, reimplemented from scratch): an :class:`Event` is a one-shot
condition that is *triggered* (scheduled) and later *processed* (its
callbacks run at its scheduled simulation time).  Processes (see
:mod:`repro.sim.process`) are generators that suspend by yielding events.

All hot-path primitives here are slotted: the scheduler backends
(:mod:`repro.sim.queues`) move these objects through buckets and batches
by the million, so they carry no ``__dict__`` and the pooled fast-path
entries (:class:`_Wakeup`) are reused across yields.  Events scheduled
for the same timestamp are dispatched as one batch in FIFO insertion
order, whichever backend is active.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "PENDING",
]


class _Wakeup:
    """Pooled heap entry for the timeout fast path.

    When a process yields a bare number (seconds of delay), the
    simulator schedules one of these instead of a full :class:`Timeout`:
    no callback list, no value, and the object is reused across yields,
    so the hot loop allocates nothing after a process's first wait.
    A cancelled wakeup (its process was interrupted away) stays in the
    queue and is discarded when popped.
    """

    __slots__ = ("process", "pending", "cancelled")

    def __init__(self, process):
        self.process = process
        self.pending = False
        self.cancelled = False


class _WakeValue:
    """Immortal 'succeeded with None' stand-in fed to ``Process._resume``
    when a fast-path wakeup fires (never enters the queue itself)."""

    __slots__ = ()
    _ok = True
    _value = None


WAKE_OK = _WakeValue()


class _PendingType:
    """Sentinel for an event value that has not been set yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


PENDING = _PendingType()


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries an arbitrary user object describing
    why the interruption happened (e.g. a node failure record).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    Events move through three states:

    1. *untriggered* — freshly created, not yet scheduled;
    2. *triggered*  — :meth:`succeed` or :meth:`fail` has been called and
       the event sits in the simulator queue;
    3. *processed*  — the simulator popped it and ran its callbacks.

    Callbacks are callables of one argument (the event itself).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused", "abandoned")

    def __init__(self, sim: "Simulator"):  # noqa: F821 - forward ref
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: a failed event whose exception was delivered to somebody
        self._defused = False
        #: set when the waiting process was interrupted away from this
        #: event: producers (e.g. Store) must not satisfy it anymore
        self.abandoned = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled via succeed()/fail()."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the simulator has run the callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        if self._value is PENDING:
            raise RuntimeError("event not yet triggered")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``.

        ``delay`` schedules processing that far in the future (default:
        process at the current simulation time).
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the simulator will not crash."""
        self._defused = True

    # -- composition -------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class Condition(Event):
    """An event that triggers when ``evaluate`` over its children is met.

    Children that are already processed are accounted for immediately.
    If any child fails, the condition fails with that child's exception.
    """

    __slots__ = ("events", "_evaluate", "_count")

    def __init__(
        self,
        sim: "Simulator",
        events: List[Event],
        evaluate: Callable[[int, int], bool],
    ):
        super().__init__(sim)
        self.events = list(events)
        self._evaluate = evaluate
        self._count = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.sim is not sim:
                raise ValueError("cannot mix events from different simulators")
            if ev.processed:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            ev.defuse()
            self.fail(ev._value)
            return
        self._count += 1
        if self._evaluate(len(self.events), self._count):
            self.succeed(self._collect())

    def _collect(self) -> dict:
        """Value of a condition: mapping of processed child -> value."""
        return {
            ev: ev._value
            for ev in self.events
            if ev.processed and ev._ok
        }


class AllOf(Condition):
    """Condition that triggers when *all* children have succeeded."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: List[Event]):
        super().__init__(sim, events, lambda total, done: done == total)


class AnyOf(Condition):
    """Condition that triggers when *any* child has succeeded."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: List[Event]):
        super().__init__(sim, events, lambda total, done: done >= 1)
