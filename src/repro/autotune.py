"""Model-guided partition autotuner with successive halving.

The paper's headline result is that the *right* Cluster/Booster split
of xPic beats either homogeneous mode — but which split is right
shifts with scale, workload, and machine.  This module turns the
choice into a search: enumerate the partition space (cluster ranks x
booster ranks x overlap/placement knobs), *seed* the candidate pool
from :mod:`repro.perfmodel` placement predictions, then evaluate
generations through the cached :meth:`~repro.engine.Engine.run_many`
pool with **successive halving** — every candidate first runs a cheap
short-step probe, losers are pruned, survivors graduate to longer
runs until the last generation measures the finalists at full steps.

Because every evaluation flows through the content-addressed
:class:`~repro.cache.ResultCache`, repeating a tune (or widening one)
never pays twice for a configuration already simulated: a rerun of the
identical search resolves entirely from cache and returns a
bit-identical winner.

Typical use::

    from repro.autotune import TuneSpace, tune

    report = tune(steps=200, cache="~/.cache/repro")
    print(report.best, report.best_runtime_s)
    report.save("tune.json")

or from the command line: ``python -m repro tune --steps 200``.
"""

from __future__ import annotations

import json
import math
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from .apps.xpic import XpicConfig, build_workload, table2_setup
from .engine import Engine, ExperimentSpec, preset_machine
from .partition import Partition
from .perfmodel import predict_partition

__all__ = [
    "TUNE_SCHEMA",
    "Partition",
    "PartitionConfig",
    "TuneSpace",
    "TuneReport",
    "predict_config_step",
    "tune",
]

#: schema tag of the TuneReport JSON export (bump on breaking change)
TUNE_SCHEMA = "repro.tune_report/1"


class PartitionConfig(Partition):
    """Deprecated alias of :class:`repro.partition.Partition`.

    The 1.x autotuner owned the partition value type; 1.8 promoted it
    to the shared :mod:`repro.partition` module (with hierarchical
    arms).  This shim keeps old constructor call sites working — it
    *is* a ``Partition`` and compares/hashes equal to one — but warns
    so callers migrate.
    """

    def __init__(
        self,
        cluster_nodes: int = 1,
        booster_nodes: int = 1,
        overlap: bool = True,
        swap_placement: bool = False,
        **kwargs,
    ):
        warnings.warn(
            "repro.autotune.PartitionConfig is deprecated; use "
            "repro.partition.Partition",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            cluster_nodes=cluster_nodes,
            booster_nodes=booster_nodes,
            overlap=overlap,
            swap_placement=swap_placement,
            **kwargs,
        )


#: the hand-coded partition every figure script uses (C+B, one node per
#: solver, overlap on) — the baseline a tune must match or beat
HAND_CODED = Partition(
    cluster_nodes=1, booster_nodes=1, overlap=True, swap_placement=False
)


@dataclass(frozen=True)
class TuneSpace:
    """The enumerable partition space one tune searches.

    ``node_counts`` are the per-side rank counts tried; the space is
    the cross product cluster x booster ranks restricted to feasible
    layouts (homogeneous one-sided runs and symmetric C+B splits),
    crossed with the overlap and placement knobs for split runs.
    """

    node_counts: Tuple[int, ...] = (1, 2, 4, 8)
    overlap: Tuple[bool, ...] = (True, False)
    swap_placement: Tuple[bool, ...] = (False, True)
    include_homogeneous: bool = True
    nested: bool = False

    def __post_init__(self):
        if not self.node_counts or any(n < 1 for n in self.node_counts):
            raise ValueError("node_counts must be positive")

    def candidates(
        self,
        machine=None,
        config: Optional[XpicConfig] = None,
    ) -> List[Partition]:
        """Enumerate the feasible partitions, sorted and deduplicated.

        ``machine`` caps rank counts at what each side physically has;
        ``config`` drops counts its row-slab decomposition cannot honor
        (``ny`` must split evenly across ranks).  With ``nested=True``
        each feasible solver width ``k`` also contributes the
        hierarchical layouts — ``2k`` same-kind nodes sub-split into a
        co-scheduled ``k+k`` fields/particles arm — on every side with
        enough nodes.
        """
        counts = sorted(set(self.node_counts))
        if config is not None:
            counts = [n for n in counts if config.ny % n == 0]
        max_cluster = len(machine.cluster) if machine is not None else None
        max_booster = len(machine.booster) if machine is not None else None
        found = set()
        for n in counts:
            if self.include_homogeneous:
                if max_cluster is None or n <= max_cluster:
                    found.add(Partition(n, 0))
                if max_booster is None or n <= max_booster:
                    found.add(Partition(0, n))
            if self.nested:
                # the arm runs each solver at width n, so the root
                # claims 2n same-kind nodes and inherits n's ny cut
                for ov in self.overlap:
                    arm = Partition(n, n, overlap=ov)
                    if max_cluster is None or 2 * n <= max_cluster:
                        found.add(Partition(2 * n, 0, cluster_arm=arm))
                    if max_booster is None or 2 * n <= max_booster:
                        found.add(Partition(0, 2 * n, booster_arm=arm))
            if max_cluster is not None and n > max_cluster:
                continue
            if max_booster is not None and n > max_booster:
                continue
            for ov in self.overlap:
                for swap in self.swap_placement:
                    found.add(
                        Partition(n, n, overlap=ov, swap_placement=swap)
                    )
        return sorted(found)


def predict_config_step(machine, config: XpicConfig, cfg):
    """Per-step :class:`~repro.perfmodel.PartitionEstimate` of one
    candidate on a machine, from the calibrated kernel model and the
    per-rank workload decomposition (the seeding signal of the search).

    ``cfg`` may be nested: scoring recurses through
    :func:`~repro.perfmodel.predict_partition`, re-deriving the
    workload decomposition at each level's actual solver width.
    """
    cfg = Partition.coerce(cfg)

    def kernels_for(ranks: int):
        wl = build_workload(config, ranks)
        return (
            wl.field_kernel,
            wl.particle_kernel,
            wl.fields_exchange_nbytes + wl.moments_exchange_nbytes,
        )

    return predict_partition(
        machine.cluster[0] if machine.cluster else None,
        machine.booster[0] if machine.booster else None,
        cfg,
        kernels_for,
    )


@dataclass
class TuneReport:
    """Outcome of one partition tune: winner, trace, model error.

    ``generations`` holds the full search trace — per generation the
    probe step count and every evaluated config with its model
    prediction and measured runtime — so a tune is auditable after the
    fact.  ``model`` grades the seeding predictions against the final
    full-step measurements.  ``cache`` carries the result-cache
    session counters when a cache was attached.
    """

    preset: str
    steps: int
    best: dict
    best_runtime_s: float
    baseline: dict = field(default_factory=dict)
    generations: list = field(default_factory=list)
    model: dict = field(default_factory=dict)
    candidates_considered: int = 0
    evaluations: int = 0
    cache: dict = field(default_factory=dict)
    host_wall_s: float = 0.0
    schema: str = TUNE_SCHEMA

    @property
    def best_config(self) -> Partition:
        """The winning partition as a :class:`~repro.partition.Partition`."""
        return Partition.from_dict(self.best)

    @property
    def speedup_vs_baseline(self) -> float:
        """Winner's speedup over the hand-coded C+B baseline (1.0 when
        no baseline was measured)."""
        base = self.baseline.get("measured_s", 0.0)
        if base <= 0 or self.best_runtime_s <= 0:
            return 1.0
        return base / self.best_runtime_s

    # -- JSON round trip ----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict form of the full tune report."""
        return {
            "schema": self.schema,
            "preset": self.preset,
            "steps": self.steps,
            "best": self.best,
            "best_runtime_s": self.best_runtime_s,
            "baseline": self.baseline,
            "generations": self.generations,
            "model": self.model,
            "candidates_considered": self.candidates_considered,
            "evaluations": self.evaluations,
            "cache": self.cache,
            "host_wall_s": self.host_wall_s,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize the report to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "TuneReport":
        try:
            return cls(
                preset=d["preset"],
                steps=d["steps"],
                best=d["best"],
                best_runtime_s=d["best_runtime_s"],
                baseline=dict(d.get("baseline") or {}),
                generations=list(d.get("generations", [])),
                model=dict(d.get("model") or {}),
                candidates_considered=d.get("candidates_considered", 0),
                evaluations=d.get("evaluations", 0),
                cache=dict(d.get("cache") or {}),
                host_wall_s=d.get("host_wall_s", 0.0),
                schema=d.get("schema", TUNE_SCHEMA),
            )
        except KeyError as exc:
            raise ValueError(
                f"not a {TUNE_SCHEMA} document (missing key {exc})"
            ) from None

    @classmethod
    def from_json(cls, text: str) -> "TuneReport":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        """Write the report as indented JSON to ``path``."""
        Path(path).write_text(self.to_json(indent=2))

    @classmethod
    def load(cls, path) -> "TuneReport":
        return cls.from_json(Path(path).read_text())


def _step_schedule(
    steps: int, generations: int, eta: int, min_steps: int
) -> List[int]:
    """Probe step counts per generation, geometric up to full steps."""
    if generations < 1:
        raise ValueError("need at least one generation")
    schedule = [
        max(min_steps, steps // eta ** (generations - 1 - g))
        for g in range(generations)
    ]
    schedule[-1] = steps
    # a floor can leave early probes above later ones; keep monotonic
    return [min(s, steps) for s in schedule]


def tune(
    space: Optional[TuneSpace] = None,
    steps: int = 500,
    preset: str = "deep-er",
    config: Optional[XpicConfig] = None,
    generations: int = 3,
    population: int = 8,
    eta: int = 2,
    min_steps: int = 5,
    workers: int = 1,
    cache=None,
    engine: Optional[Engine] = None,
    seed: int = 20180521,
    baseline: bool = True,
    sim_backend: Optional[str] = None,
) -> TuneReport:
    """Search the partition space for the fastest configuration.

    Seeds ``population`` candidates by the perfmodel prediction, then
    runs ``generations`` rounds of successive halving: each round
    measures the survivors at a geometrically growing step count
    (starting near ``min_steps``, ending at the full ``steps``) through
    :meth:`Engine.run_many` (``workers``-wide, ``cache``-memoized) and
    keeps the fastest ``1/eta`` fraction.  ``baseline=True`` also
    measures the hand-coded C+B configuration at full steps so the
    report can state the tuned speedup.

    The search is fully deterministic: rerunning an identical tune
    reproduces the same winner bit for bit (and, with a cache, without
    simulating anything twice).  ``sim_backend`` picks the event-queue
    backend every probe runs on; backends are bit-identical, so it
    changes only the tune's wall-clock cost, never the winner.
    """
    if population < 1:
        raise ValueError("population must be >= 1")
    if eta < 2:
        raise ValueError("eta must be >= 2")
    space = space or TuneSpace()
    engine = engine or Engine()
    from .engine import _coerce_cache

    # coerce once so one object accumulates the session hit/miss counters
    cache = _coerce_cache(cache)
    t0 = time.perf_counter()  # wall-clock-ok: host-side telemetry only

    machine = preset_machine(preset)
    base_config = config if config is not None else table2_setup(steps=steps)
    candidates = space.candidates(machine=machine, config=base_config)
    if not candidates:
        raise ValueError("tune space has no feasible candidate")

    # -- model-guided seeding ---------------------------------------------
    predicted = {
        cfg: predict_config_step(machine, base_config, cfg)
        for cfg in candidates
    }
    pool = sorted(candidates, key=lambda c: (predicted[c].step_s, c))
    pool = pool[:population]

    # -- successive halving ------------------------------------------------
    schedule = _step_schedule(steps, generations, eta, min_steps)
    trace: list = []
    evaluations = 0
    measured_final: dict = {}
    for g, probe_steps in enumerate(schedule):
        specs = [
            cfg.to_spec(
                probe_steps, preset=preset, seed=seed, config=config,
                sim_backend=sim_backend,
            )
            for cfg in pool
        ]
        sweep = engine.run_many(specs, workers=workers, cache=cache)
        measured = {
            cfg: r.total_runtime for cfg, r in zip(pool, sweep.reports)
        }
        evaluations += len(pool)
        trace.append(
            {
                "steps": probe_steps,
                "evaluated": [
                    {
                        "config": cfg.to_dict(),
                        "label": cfg.label(),
                        "predicted_s": predicted[cfg].total(probe_steps),
                        "measured_s": measured[cfg],
                    }
                    for cfg in pool
                ],
            }
        )
        ranked = sorted(pool, key=lambda c: (measured[c], c))
        if g == len(schedule) - 1:
            measured_final = measured
            pool = ranked[:1]
        else:
            pool = ranked[: max(1, math.ceil(len(ranked) / eta))]

    best = pool[0]
    best_runtime = measured_final[best]

    # -- model-vs-measured error on the full-step finalists ----------------
    errors = [
        abs(predicted[cfg].total(steps) - t) / t
        for cfg, t in measured_final.items()
        if t > 0
    ]
    model = {
        "mean_abs_rel_err": sum(errors) / len(errors) if errors else 0.0,
        "graded_configs": len(errors),
    }

    # -- hand-coded baseline ----------------------------------------------
    baseline_section: dict = {}
    if baseline:
        base_spec = HAND_CODED.to_spec(
            steps, preset=preset, seed=seed, config=config,
            sim_backend=sim_backend,
        )
        base_report = engine.run(base_spec, cache=cache)
        baseline_section = {
            "config": HAND_CODED.to_dict(),
            "label": HAND_CODED.label(),
            "measured_s": base_report.total_runtime,
        }

    return TuneReport(
        preset=preset,
        steps=steps,
        best=best.to_dict(),
        best_runtime_s=best_runtime,
        baseline=baseline_section,
        generations=trace,
        model=model,
        candidates_considered=len(candidates),
        evaluations=evaluations,
        cache=cache.stats() if cache is not None else {},
        host_wall_s=time.perf_counter() - t0,  # wall-clock-ok: host-side telemetry only
    )
